#include "dispatch/backend.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/spec_parse.hpp"
#include "decode/kbest.hpp"
#include "decode/linear.hpp"
#include "mimo/constellation.hpp"
#include "obs/trace.hpp"

namespace sd::dispatch {

std::string_view backend_kind_name(BackendKind k) noexcept {
  switch (k) {
    case BackendKind::kCpu: return "cpu";
    case BackendKind::kFpga: return "fpga";
    case BackendKind::kParallelSd: return "parallel-sd";
  }
  return "?";
}

namespace {

[[nodiscard]] bool is_linear_strategy(Strategy s) noexcept {
  return s == Strategy::kMrc || s == Strategy::kZf || s == Strategy::kMmse;
}

[[nodiscard]] bool is_fixed_complexity(Strategy s) noexcept {
  return s == Strategy::kKBest || s == Strategy::kFsd;
}

[[nodiscard]] double seconds_between(serve::Clock::time_point a,
                                     serve::Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

Backend::Backend(SystemConfig system, BackendConfig config)
    : system_(system),
      cfg_(std::move(config)),
      prep_cache_(ChannelPrepCache::Options{
          std::max<usize>(1, cfg_.prep_cache_capacity), 4}) {
  SD_CHECK(cfg_.lanes >= 1, "backend needs at least one lane");
  SD_CHECK(cfg_.lane_queue_capacity >= 1, "lane queue capacity must be positive");
  SD_CHECK(cfg_.batch_size >= 1, "batch size must be positive");
  SD_CHECK(cfg_.rtt_s >= 0.0, "backend RTT must be non-negative");
  SD_CHECK(cfg_.max_wide_width >= 1, "max wide width must be positive");
  // Fail fast on an unbuildable spec in the constructing thread instead of
  // from inside a lane: build (and discard) one detector eagerly. The probe
  // also tells us whether the primary has a cacheable prep phase — without
  // one there is nothing to fuse, so the cross-lane former stays off.
  const PrepKind probe_kind = make_lane_detector()->prep_kind();
  former_enabled_ = cfg_.cross_lane_former && cfg_.fuse_cross_channel &&
                    cfg_.lanes > 1 && probe_kind != PrepKind::kNone;
  // Which overload-ladder rungs this substrate can serve. A linear primary
  // has nothing cheaper to degrade to; fixed-complexity searches skip the
  // K-Best rung (they already are one); an MMSE-Neumann primary skips its
  // own rung and degrades straight to linear.
  ladder_.push_back(serve::DecodeTier::kPrimary);
  if (!is_linear_strategy(cfg_.decoder.strategy)) {
    if (!is_fixed_complexity(cfg_.decoder.strategy) &&
        cfg_.decoder.strategy != Strategy::kMmseNeumann) {
      ladder_.push_back(serve::DecodeTier::kKBest);
    }
    if (cfg_.decoder.strategy != Strategy::kMmseNeumann) {
      ladder_.push_back(serve::DecodeTier::kMmseApprox);
    }
    ladder_.push_back(serve::DecodeTier::kLinear);
  }
  queues_.resize(cfg_.lanes);
  acct_.lanes.resize(cfg_.lanes);
}

Backend::~Backend() {
  close();
  join();
}

std::unique_ptr<Detector> Backend::make_lane_detector() const {
  return make_detector(system_, cfg_.decoder);
}

void Backend::start(LaneSink& sink) {
  SD_CHECK(threads_.empty(), "backend already started");
  sink_ = &sink;
  threads_.reserve(cfg_.lanes);
  for (unsigned l = 0; l < cfg_.lanes; ++l) {
    threads_.emplace_back([this, l] { lane_main(l); });
  }
}

Backend::PushResult Backend::place(PlacedFrame frame) {
  const unsigned lane = frame.lane;
  SD_CHECK(lane < cfg_.lanes, "placement lane out of range");
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return {serve::PushStatus::kClosed, std::nullopt};
  std::deque<PlacedFrame>& q = queues_[lane];
  if (q.size() >= cfg_.lane_queue_capacity) {
    switch (cfg_.policy) {
      case serve::BackpressurePolicy::kBlock:
        not_full_.wait(lock, [&] {
          return q.size() < cfg_.lane_queue_capacity || closed_;
        });
        if (closed_) return {serve::PushStatus::kClosed, std::nullopt};
        break;
      case serve::BackpressurePolicy::kReject:
        return {serve::PushStatus::kRejected, std::nullopt};
      case serve::BackpressurePolicy::kDropOldest: {
        PlacedFrame oldest = std::move(q.front());
        q.pop_front();
        q.push_back(std::move(frame));
        not_empty_.notify_all();
        return {serve::PushStatus::kDisplacedOldest, std::move(oldest)};
      }
    }
  }
  q.push_back(std::move(frame));
  not_empty_.notify_all();
  return {serve::PushStatus::kAccepted, std::nullopt};
}

void Backend::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

void Backend::join() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

usize Backend::queue_depth(unsigned lane) const {
  SD_CHECK(lane < cfg_.lanes, "lane out of range");
  std::lock_guard<std::mutex> lock(mu_);
  return queues_[lane].size();
}

usize Backend::queue_depth_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  usize total = 0;
  for (const auto& q : queues_) total += q.size();
  return total;
}

Backend::Snapshot Backend::snapshot() const {
  Snapshot s;
  {
    std::lock_guard<std::mutex> lock(acct_mu_);
    s = acct_;
  }
  s.in_queue = queue_depth_total();
  return s;
}

bool Backend::next_batch(unsigned lane, std::vector<PlacedFrame>& out) {
  out.clear();
  bool stole = false;
  usize gathered = 0;      // cross-lane claims (rebound + sink-notified)
  usize own_extended = 0;  // own-queue frames widened past batch_size
  bool former_eligible = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++hungry_;
    for (;;) {
      std::deque<PlacedFrame>& own = queues_[lane];
      if (!own.empty()) {
        while (!own.empty() && out.size() < cfg_.batch_size) {
          out.push_back(std::move(own.front()));
          own.pop_front();
        }
        // --- Wide-batch former (DESIGN.md §16): extend this pop with
        // compatible frames claimed from the backend's OTHER queues — the
        // lane's own queue beyond batch_size, and its siblings' — so fused
        // width tracks the backend's total ready work instead of one lane's
        // batch cap. The claim is the pop itself: removal under mu_, the
        // same lock work stealing takes, so a gathered frame can never also
        // be stolen or decoded twice. Width is capped at a fair share of the
        // ready work divided across the lanes currently asking for work AND
        // the lanes whose queues are empty (they will steal or go hungry
        // next) — one returning lane must not drain the backend into a
        // single serialized run — and gathering walks the queues round-robin
        // (own first),
        // taking queue FRONTS only (oldest first, same age discipline as
        // stealing) while they match the tier of the run being extended.
        // Own-queue extensions are NOT cross-lane claims: no sink
        // notification, no rebinding, no former_gathered tick — the frame
        // was this lane's already; it just rides a wider run. Without them,
        // refill bursts leave per-lane remainders beyond batch_size that
        // only drain as width-1 stragglers, collapsing the width p50 at
        // saturation (the bench_coherent_batch cross_lane gate pins this).
        if (former_enabled_) {
          former_eligible = true;
          usize ready = out.size() + own.size();
          unsigned starving = 0;  // empty sibling queues: imminent stealers
          for (unsigned l = 0; l < cfg_.lanes; ++l) {
            if (l == lane) continue;
            ready += queues_[l].size();
            if (queues_[l].empty()) ++starving;
          }
          const unsigned claimants = hungry_ + starving;  // hungry_ >= 1: us
          const usize fair = (ready + claimants - 1) / claimants;
          const usize target =
              std::min(cfg_.max_wide_width, std::max(out.size(), fair));
          const serve::DecodeTier tier = out.back().tier;
          bool progress = true;
          while (out.size() < target && progress) {
            progress = false;
            for (unsigned off = 0;
                 off < cfg_.lanes && out.size() < target; ++off) {
              std::deque<PlacedFrame>& q = queues_[(lane + off) % cfg_.lanes];
              if (q.empty() || q.front().tier != tier) continue;
              out.push_back(std::move(q.front()));
              q.pop_front();
              if (off != 0) {
                ++gathered;
              } else {
                ++own_extended;
              }
              progress = true;
            }
          }
        }
        break;
      }
      if (cfg_.allow_stealing) {
        // Idle lane: take the *oldest* frame from the most backlogged
        // sibling — the frame that has waited longest is the one closest
        // to its deadline.
        unsigned victim = lane;
        usize deepest = 0;
        for (unsigned l = 0; l < cfg_.lanes; ++l) {
          if (l != lane && queues_[l].size() > deepest) {
            deepest = queues_[l].size();
            victim = l;
          }
        }
        if (deepest > 0) {
          out.push_back(std::move(queues_[victim].front()));
          queues_[victim].pop_front();
          stole = true;
          break;
        }
      }
      if (closed_) {
        --hungry_;
        return false;
      }
      not_empty_.wait(lock);
    }
    --hungry_;
  }
  not_full_.notify_all();
  if (stole) {
    PlacedFrame& pf = out.front();
    {
      std::lock_guard<std::mutex> lock(acct_mu_);
      ++acct_.steals;
    }
    // Notify with the original placement still intact, then rebind the
    // frame to the thief lane.
    if (sink_ != nullptr) sink_->frame_stolen(pf, lane);
    pf.global_worker = pf.global_worker - pf.lane + lane;
    pf.lane = lane;
    pf.stolen = true;
  }
  if (former_eligible) {
    std::lock_guard<std::mutex> lock(acct_mu_);
    if (gathered + own_extended > 0) {
      ++acct_.former_runs;
      acct_.former_gathered += gathered;
    } else {
      ++acct_.former_empty;
    }
  }
  if (gathered > 0) {
    // Gathered frames keep stolen=false — they were co-scheduled into a wide
    // run, not rescued from an idle lane — but the dispatcher-side pending
    // accounting rebinds exactly like a steal (default frame_gathered).
    // Cross-lane claims are interleaved with own-queue extensions by the
    // round-robin above, so they are found by lane, not position: a frame
    // still carrying a sibling's lane id was gathered.
    for (PlacedFrame& pf : out) {
      if (pf.lane == lane) continue;
      if (sink_ != nullptr) sink_->frame_gathered(pf, lane);
      pf.global_worker = pf.global_worker - pf.lane + lane;
      pf.lane = lane;
    }
  }
  return true;
}

void Backend::lane_main(unsigned lane) {
  // Each lane owns a private detector ladder, so decodes never share mutable
  // state across threads. The K-Best rung keeps a small fixed width: it
  // exists to bound work under overload, not to chase BER.
  std::unique_ptr<Detector> primary = make_lane_detector();
  const Constellation& constellation = Constellation::get(system_.modulation);
  KBestOptions kb;
  kb.k = 8;
  KBestDetector kbest(constellation, kb);
  MmseNeumannDetector mmse(MmseNeumannOptions{}, constellation);
  LinearDetector linear(LinearKind::kZf, constellation);

  std::vector<PlacedFrame> batch;
  batch.reserve(cfg_.batch_size);
  while (next_batch(lane, batch)) {
    SD_TRACE_SPAN("dispatch.batch");
    Timer busy;
    // Split the popped batch into maximal runs of CONSECUTIVE frames that
    // share a tier. Channels may differ within a run — the wide-BFS fused
    // path resolves each distinct fingerprint once and decodes them together
    // — so interleaved cells (A,B,A,B,...) fuse at full width instead of
    // collapsing to width-1 runs. Consecutive-only grouping never reorders
    // frames, so batch_size=1 (the default) behaves exactly as before and
    // completion order is preserved within the pop.
    usize i = 0;
    while (i < batch.size()) {
      usize j = i + 1;
      while (j < batch.size() && batch[j].tier == batch[i].tier &&
             (cfg_.fuse_cross_channel ||
              batch[j].frame.channel.same_storage(batch[i].frame.channel))) {
        ++j;
      }
      process_run(lane, *primary, kbest, mmse, linear, batch, i, j);
      i = j;
    }
    std::lock_guard<std::mutex> lock(acct_mu_);
    serve::WorkerStats& ws = acct_.lanes[lane];
    ws.frames += batch.size();
    ws.batches += 1;
    ws.busy_seconds += busy.elapsed_seconds();
  }
}

void Backend::process_run(unsigned lane, Detector& primary, Detector& kbest,
                          Detector& mmse, Detector& linear,
                          std::vector<PlacedFrame>& batch, usize begin,
                          usize end) {
  Detector& chosen =
      batch[begin].tier == serve::DecodeTier::kPrimary      ? primary
      : batch[begin].tier == serve::DecodeTier::kKBest      ? kbest
      : batch[begin].tier == serve::DecodeTier::kMmseApprox ? mmse
                                                            : linear;
  const PrepKind kind = chosen.prep_kind();
  // Detectors without a cacheable channel phase have nothing to share, so
  // their runs decode per frame. Paced (device) backends with a cacheable
  // phase DO fuse: a gathered run ships as one device round trip, and
  // process_fused paces to the run's summed charged time plus one RTT.
  if (kind == PrepKind::kNone) {
    for (usize i = begin; i < end; ++i) {
      process(lane, primary, kbest, mmse, linear, batch[i]);
    }
    return;
  }

  // Resolve each DISTINCT channel of the run once. The first frame carrying
  // a channel pays (or reuses) the cache lookup; later frames with the same
  // storage — consecutive or interleaved — reuse the run-local resolution
  // and count as hits by construction.
  std::vector<std::shared_ptr<const PreprocessedChannel>> preps(end - begin);
  usize misses = 0;
  for (usize i = begin; i < end; ++i) {
    usize j = begin;
    while (j < i && !batch[j].frame.channel.same_storage(batch[i].frame.channel)) {
      ++j;
    }
    if (j < i) {
      preps[i - begin] = preps[j - begin];
      batch[i].prep_hit = true;
      continue;
    }
    bool cache_hit = false;
    preps[i - begin] =
        prep_cache_.get_or_build(batch[i].frame.channel, kind, &cache_hit);
    batch[i].prep_hit = cache_hit;
    if (!cache_hit) ++misses;
  }
  {
    std::lock_guard<std::mutex> lock(acct_mu_);
    acct_.prep_hits += (end - begin) - misses;
    acct_.prep_misses += misses;
  }

  if (end - begin == 1) {
    process(lane, primary, kbest, mmse, linear, batch[begin], preps[0].get());
    return;
  }
  process_fused(lane, chosen, linear, batch, begin, end, preps);
}

void Backend::process_fused(
    unsigned lane, Detector& chosen, Detector& linear,
    std::vector<PlacedFrame>& batch, usize begin, usize end,
    const std::vector<std::shared_ptr<const PreprocessedChannel>>& preps) {
  SD_TRACE_SPAN("dispatch.fused");
  const serve::Clock::time_point dequeued = serve::Clock::now();
  const usize n = end - begin;
  std::vector<serve::FrameResult> results(n);
  std::vector<Detector::WideItem> items;
  items.reserve(n);
  std::vector<usize> live;
  live.reserve(n);

  for (usize i = 0; i < n; ++i) {
    PlacedFrame& pf = batch[begin + i];
    serve::FrameRequest& frame = pf.frame;
    serve::FrameResult& r = results[i];
    r.id = frame.id;
    r.worker_id = pf.global_worker;
    r.backend_id = pf.backend_id;
    r.lane_id = lane;
    r.tier = pf.tier;
    r.stolen = pf.stolen;
    r.queue_wait_s = seconds_between(frame.submit_time, dequeued);
    const bool has_deadline = frame.deadline_s > 0.0;
    if (has_deadline && r.queue_wait_s > frame.deadline_s) {
      if (cfg_.zf_fallback_on_expiry) {
        SD_TRACE_SPAN("dispatch.zf_fallback");
        r.status = serve::FrameStatus::kExpiredFallback;
        r.tier = serve::DecodeTier::kLinear;
        linear.decode_into(frame.h(), frame.y, frame.sigma2, r.result);
      } else {
        r.status = serve::FrameStatus::kExpiredDropped;
      }
    } else {
      r.status = serve::FrameStatus::kCompleted;
      items.push_back(Detector::WideItem{preps[i].get(), frame.y,
                                         frame.sigma2, &r.result});
      live.push_back(i);
    }
  }

  if (!live.empty()) {
    SD_TRACE_SPAN("dispatch.decode");
    chosen.decode_wide(items);
  }

  double charged_total = 0.0;
  if (cfg_.pace_to_charged && !live.empty()) {
    // Former-aware pacing: the gathered run ships as ONE device round trip.
    // Charged device time sums over the run's frames, the RTT is paid once —
    // this amortization is why the former stays on for paced backends.
    charged_total = cfg_.rtt_s;
    for (usize i : live) {
      charged_total += results[i].result.stats.search_seconds;
    }
    const double spent = seconds_between(dequeued, serve::Clock::now());
    if (charged_total > spent) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(charged_total - spent));
    }
  }

  const serve::Clock::time_point done = serve::Clock::now();
  const double service = seconds_between(dequeued, done);
  // Each frame's service spans the whole fused run (they finished together);
  // the lane occupancy the cost model calibrates against is the amortized
  // share, which is the entire point of fusing. Paced backends charge the
  // simulated device occupancy instead of host wall time.
  const double charged_share =
      live.empty()
          ? 0.0
          : (cfg_.pace_to_charged ? charged_total : service) /
                static_cast<double>(live.size());
  {
    std::lock_guard<std::mutex> lock(acct_mu_);
    if (live.size() >= 2) {
      ++acct_.fused_runs;
      acct_.fused_frames += live.size();
      if (acct_.fused_width_counts.size() <= live.size()) {
        acct_.fused_width_counts.resize(live.size() + 1, 0);
      }
      ++acct_.fused_width_counts[live.size()];
    }
    for (usize i = 0; i < n; ++i) {
      ++acct_.frames;
      switch (results[i].status) {
        case serve::FrameStatus::kCompleted:
          ++acct_.completed;
          if (batch[begin + i].tier == serve::DecodeTier::kKBest) {
            ++acct_.degraded_kbest;
          }
          if (batch[begin + i].tier == serve::DecodeTier::kMmseApprox &&
              cfg_.decoder.strategy != Strategy::kMmseNeumann) {
            ++acct_.degraded_mmse;
          }
          if (batch[begin + i].tier == serve::DecodeTier::kLinear &&
              !is_linear_strategy(cfg_.decoder.strategy)) {
            ++acct_.degraded_linear;
          }
          break;
        case serve::FrameStatus::kExpiredFallback:
          ++acct_.expired_fallback;
          break;
        case serve::FrameStatus::kExpiredDropped:
          ++acct_.expired_dropped;
          break;
        case serve::FrameStatus::kEvicted:
          break;
      }
    }
  }
  for (usize i = 0; i < n; ++i) {
    PlacedFrame& pf = batch[begin + i];
    serve::FrameResult& r = results[i];
    r.service_s = service;
    r.e2e_s = seconds_between(pf.frame.submit_time, done);
    r.deadline_missed = pf.frame.deadline_s > 0.0 && r.e2e_s > pf.frame.deadline_s;
    pf.charged_seconds =
        r.status == serve::FrameStatus::kCompleted ? charged_share : service;
    if (sink_ != nullptr) sink_->frame_retired(pf, std::move(r));
  }
}

void Backend::process(unsigned lane, Detector& primary, Detector& kbest,
                      Detector& mmse, Detector& linear, PlacedFrame& pf,
                      const PreprocessedChannel* prep) {
  SD_TRACE_SPAN("dispatch.frame");
  const serve::Clock::time_point dequeued = serve::Clock::now();
  serve::FrameRequest& frame = pf.frame;

  serve::FrameResult r;
  r.id = frame.id;
  r.worker_id = pf.global_worker;
  r.backend_id = pf.backend_id;
  r.lane_id = lane;
  r.tier = pf.tier;
  r.stolen = pf.stolen;
  r.queue_wait_s = seconds_between(frame.submit_time, dequeued);

  const bool has_deadline = frame.deadline_s > 0.0;
  const bool expired_in_queue =
      has_deadline && r.queue_wait_s > frame.deadline_s;
  if (expired_in_queue) {
    if (cfg_.zf_fallback_on_expiry) {
      SD_TRACE_SPAN("dispatch.zf_fallback");
      r.status = serve::FrameStatus::kExpiredFallback;
      r.tier = serve::DecodeTier::kLinear;
      linear.decode_into(frame.h(), frame.y, frame.sigma2, r.result);
    } else {
      r.status = serve::FrameStatus::kExpiredDropped;
    }
  } else {
    r.status = serve::FrameStatus::kCompleted;
    Detector& chosen = pf.tier == serve::DecodeTier::kPrimary      ? primary
                       : pf.tier == serve::DecodeTier::kKBest      ? kbest
                       : pf.tier == serve::DecodeTier::kMmseApprox ? mmse
                                                                   : linear;
    {
      SD_TRACE_SPAN("dispatch.decode");
      if (prep != nullptr && chosen.prep_kind() == prep->kind) {
        chosen.decode_with(*prep, frame.y, frame.sigma2, r.result);
      } else {
        chosen.decode_into(frame.h(), frame.y, frame.sigma2, r.result);
      }
    }
    if (cfg_.pace_to_charged) {
      // Pace the lane to the charged device time plus the transfer RTT: the
      // remainder of the simulated accelerator round trip beyond what the
      // model evaluation itself consumed on the host.
      const double charged = r.result.stats.search_seconds + cfg_.rtt_s;
      const double spent = seconds_between(dequeued, serve::Clock::now());
      if (charged > spent) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(charged - spent));
      }
    }
  }

  const serve::Clock::time_point done = serve::Clock::now();
  r.service_s = seconds_between(dequeued, done);
  r.e2e_s = seconds_between(frame.submit_time, done);
  r.deadline_missed = has_deadline && r.e2e_s > frame.deadline_s;
  // What this frame cost the lane: simulated device occupancy for paced
  // backends, measured wall time otherwise. The cost model calibrates
  // against this.
  pf.charged_seconds = cfg_.pace_to_charged
                           ? r.result.stats.search_seconds + cfg_.rtt_s
                           : r.service_s;

  {
    std::lock_guard<std::mutex> lock(acct_mu_);
    ++acct_.frames;
    switch (r.status) {
      case serve::FrameStatus::kCompleted:
        ++acct_.completed;
        if (pf.tier == serve::DecodeTier::kKBest) ++acct_.degraded_kbest;
        if (pf.tier == serve::DecodeTier::kMmseApprox &&
            cfg_.decoder.strategy != Strategy::kMmseNeumann) {
          ++acct_.degraded_mmse;
        }
        if (pf.tier == serve::DecodeTier::kLinear &&
            !is_linear_strategy(cfg_.decoder.strategy)) {
          ++acct_.degraded_linear;
        }
        break;
      case serve::FrameStatus::kExpiredFallback: ++acct_.expired_fallback; break;
      case serve::FrameStatus::kExpiredDropped: ++acct_.expired_dropped; break;
      case serve::FrameStatus::kEvicted: break;  // accounted by the dispatcher
    }
  }
  if (sink_ != nullptr) sink_->frame_retired(pf, std::move(r));
}

CpuBackend::CpuBackend(SystemConfig system, BackendConfig config)
    : Backend(system, [&] {
        config.kind = BackendKind::kCpu;
        return std::move(config);
      }()) {}

FpgaBackend::FpgaBackend(SystemConfig system, BackendConfig config)
    : Backend(system, [&] {
        config.kind = BackendKind::kFpga;
        SD_CHECK(config.decoder.device != TargetDevice::kCpu,
                 "FpgaBackend needs an @fpga decoder spec");
        config.pace_to_charged = true;
        return std::move(config);
      }()) {}

ParallelSdBackend::ParallelSdBackend(SystemConfig system, BackendConfig config)
    : Backend(system, [&] {
        config.kind = BackendKind::kParallelSd;
        SD_CHECK(config.decoder.strategy == Strategy::kMultiPe,
                 "ParallelSdBackend needs a multipe decoder spec");
        return std::move(config);
      }()) {}

std::unique_ptr<Backend> make_backend(const SystemConfig& system,
                                      BackendConfig config) {
  switch (config.kind) {
    case BackendKind::kCpu:
      return std::make_unique<CpuBackend>(system, std::move(config));
    case BackendKind::kFpga:
      return std::make_unique<FpgaBackend>(system, std::move(config));
    case BackendKind::kParallelSd:
      return std::make_unique<ParallelSdBackend>(system, std::move(config));
  }
  throw invalid_argument_error("unknown backend kind");
}

namespace {

[[nodiscard]] bool is_all_digits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  usize start = 0;
  while (start <= text.size()) {
    const usize end = text.find(sep, start);
    if (end == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

// Measured lane-level speedup of the int16 BFS datapath over fp32 (see
// EXPERIMENTS.md: bench_quant_kernels shows ~3x on the row-0 level-GEMM
// shapes; whole-decode rates dilute that with the float preprocessing and
// tree bookkeeping, so the prior uses a deliberately conservative ratio).
constexpr double kInt16PriorSpeedup = 2.5;

// Substrate-specific cost-model rate priors. Rough by design — calibration
// overwrites them after a handful of observations; they only need to order
// the substrates sensibly when the model is cold.
void apply_rate_priors(BackendConfig& cfg) {
  switch (cfg.kind) {
    case BackendKind::kCpu:
      cfg.prior_seconds_per_node = 150e-9;
      cfg.prior_overhead_s = 30e-6;
      break;
    case BackendKind::kFpga:
      // The pipelined device expands nodes far faster than the host; the
      // round trip dominates the fixed cost.
      cfg.prior_seconds_per_node = 10e-9;
      cfg.prior_overhead_s = 20e-6;
      break;
    case BackendKind::kParallelSd:
      cfg.prior_seconds_per_node = 80e-9;
      cfg.prior_overhead_s = 50e-6;
      break;
  }
  // The int16 BFS datapath runs measurably faster than the fp32 kernels it
  // replaces (bench_quant_kernels: ~3x on the level-GEMM, diluted by the
  // non-kernel share of a decode). Seed its per-node rate from the fp32
  // prior scaled by a conservative lane-level ratio, so a COLD cost model
  // already orders int16 lanes cheaper than fp32 lanes instead of treating
  // both substrates as identical until EWMA calibration catches up.
  if (decoder_precision_name(cfg.decoder) == "int16") {
    cfg.prior_seconds_per_node /= kInt16PriorSpeedup;
  }
  if (cfg.pace_to_charged || cfg.kind == BackendKind::kFpga) {
    cfg.prior_overhead_s += cfg.rtt_s;
  }
}

namespace {

BackendConfig parse_pool_entry(std::string_view entry,
                               const PoolDefaults& defaults) {
  const std::vector<std::string> fields = split(entry, ':');
  const std::string& name = fields[0];
  SD_CHECK(!name.empty(), "empty backend name in pool spec");

  BackendConfig cfg;
  cfg.label = name;
  cfg.lane_queue_capacity = defaults.lane_queue_capacity;
  cfg.policy = defaults.policy;
  cfg.batch_size = defaults.batch_size;
  cfg.fuse_cross_channel = defaults.fuse_cross_channel;
  cfg.cross_lane_former = defaults.cross_lane_former;
  cfg.max_wide_width = defaults.max_wide_width;
  cfg.zf_fallback_on_expiry = defaults.zf_fallback_on_expiry;

  bool saw_rtt = false;
  std::string decoder_opts;  // leftover fields, rejoined for parse_decoder_spec
  for (usize i = 1; i < fields.size(); ++i) {
    const std::string& f = fields[i];
    if (f.empty()) continue;
    if (is_all_digits(f)) {
      cfg.lanes = static_cast<unsigned>(std::stoul(f));
      continue;
    }
    const usize eq = f.find('=');
    const std::string_view key = std::string_view(f).substr(0, eq);
    if (key == "rtt-ms" && eq != std::string::npos) {
      SpecOption opt{std::string(key), f.substr(eq + 1)};
      cfg.rtt_s = spec_option_double(opt) * 1e-3;
      SD_CHECK(cfg.rtt_s >= 0.0, "backend RTT must be non-negative");
      saw_rtt = true;
    } else if (key == "queue" && eq != std::string::npos) {
      SpecOption opt{std::string(key), f.substr(eq + 1)};
      cfg.lane_queue_capacity = static_cast<usize>(spec_option_int(opt));
    } else if (key == "batch" && eq != std::string::npos) {
      SpecOption opt{std::string(key), f.substr(eq + 1)};
      cfg.batch_size = static_cast<usize>(spec_option_int(opt));
    } else if (key == "wide-width" && eq != std::string::npos) {
      SpecOption opt{std::string(key), f.substr(eq + 1)};
      cfg.max_wide_width = static_cast<usize>(spec_option_int(opt));
    } else if (f == "no-cross-lane-fuse") {
      cfg.cross_lane_former = false;
    } else if (f == "cross-lane-fuse") {
      cfg.cross_lane_former = true;
    } else if (f == "no-steal") {
      cfg.allow_stealing = false;
    } else if (f == "steal") {
      cfg.allow_stealing = true;
    } else {
      if (!decoder_opts.empty()) decoder_opts += ',';
      decoder_opts += f;
    }
  }

  if (name == "cpu") {
    cfg.kind = BackendKind::kCpu;
    cfg.decoder = defaults.primary;
    SD_CHECK(decoder_opts.empty(),
             "backend 'cpu' serves the server's primary decoder and takes no "
             "decoder options (got '" + decoder_opts + "')");
    if (saw_rtt) cfg.pace_to_charged = true;
  } else if (name == "fpga" || name == "fpga-base") {
    cfg.kind = BackendKind::kFpga;
    std::string spec = name == "fpga" ? "sphere@fpga" : "sphere@fpga-base";
    if (!decoder_opts.empty()) spec += ":" + decoder_opts;
    cfg.decoder = parse_decoder_spec(spec);
    cfg.pace_to_charged = true;
    cfg.allow_stealing = false;  // device queues: no host-side rebinding
    if (!saw_rtt) cfg.rtt_s = defaults.fpga_rtt_s;
  } else if (name == "multipe") {
    cfg.kind = BackendKind::kParallelSd;
    std::string spec = "multipe";
    if (!decoder_opts.empty()) spec += ":" + decoder_opts;
    cfg.decoder = parse_decoder_spec(spec);
    if (saw_rtt) cfg.pace_to_charged = true;
  } else {
    // Any decoder-spec name runs as a CPU backend of that decoder
    // ("kbest:2:k=16", "zf", "sphere:sorted", ...). parse_decoder_spec
    // throws the pointed error on unknown names.
    cfg.kind = BackendKind::kCpu;
    std::string spec = name;
    if (!decoder_opts.empty()) spec += ":" + decoder_opts;
    cfg.decoder = parse_decoder_spec(spec);
    if (saw_rtt) cfg.pace_to_charged = true;
  }
  apply_rate_priors(cfg);
  return cfg;
}

}  // namespace

std::vector<BackendConfig> parse_backend_pool(std::string_view text,
                                              const PoolDefaults& defaults) {
  std::vector<BackendConfig> out;
  for (const std::string& entry : split(text, ',')) {
    if (entry.empty()) continue;
    out.push_back(parse_pool_entry(entry, defaults));
  }
  SD_CHECK(!out.empty(), "backend pool spec '" + std::string(text) +
                             "' names no backends");
  // Cost-model calibration is keyed by label; disambiguate repeats so
  // "cpu:2,cpu:2" calibrates (and reports) per backend, not pooled.
  std::unordered_map<std::string, int> seen;
  for (BackendConfig& cfg : out) {
    const int n = seen[cfg.label]++;
    if (n > 0) cfg.label += "#" + std::to_string(n);
  }
  return out;
}

}  // namespace sd::dispatch
