// Per-frame decode-cost prediction for placement decisions.
//
// Sphere-decoding work is wildly variable — nodes expanded swing by orders
// of magnitude with SNR and channel conditioning — so a placement layer that
// treats every frame as equal wastes the heterogeneous pool. The CostModel
// predicts, *before* placement, how much a frame will cost on each backend
// from features observable at submit time:
//
//   - antenna count M and modulation order (geometry),
//   - sigma2 / SNR (noise regime — the dominant complexity driver),
//   - a conditioning proxy for the R diagonal after QR: the spread of the
//     channel's column norms, which tracks how unbalanced the triangular
//     diagonal will be without paying for the QR at placement time.
//
// Predictions start from an analytic prior (exponential-in-M node count with
// an SNR-dependent exponent, matching the paper's complexity curves) and are
// calibrated online per (backend, tier, scenario bucket) via EWMA over the
// actual DecodeStats.nodes_expanded and charged seconds of completed frames.
// The model is deterministic given the observation stream, and exports /
// imports its state as JSON so soaks can start warm.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "linalg/matrix.hpp"
#include "serve/frame.hpp"

namespace sd::dispatch {

using serve::DecodeTier;

/// Features extracted from one frame at submit time. Extraction is a pure
/// function of (h, sigma2, geometry) — deterministic across runs.
struct FrameFeatures {
  index_t num_tx = 0;
  index_t num_rx = 0;  ///< receive antennas; drives the tall-channel prior
  index_t mod_order = 0;
  double sigma2 = 0.0;
  double snr_db = 0.0;      ///< derived from sigma2 and num_tx
  double cond_proxy = 1.0;  ///< max/min channel column norm, >= 1

  /// O(N*M) scan of the channel estimate; no QR is performed.
  [[nodiscard]] static FrameFeatures extract(const CMat& h, double sigma2,
                                             index_t mod_order);
};

struct CostModelOptions {
  double ewma_alpha = 0.25;   ///< weight of the newest observation
  /// When false, predicted seconds always come from the analytic rate priors
  /// (seconds-per-node x predicted nodes + overhead); only the node-count
  /// EWMA — which is deterministic, nodes_expanded being an exact algorithmic
  /// count — adapts. Placement then depends solely on the submitted frame
  /// stream, never on measured wall time: the deterministic mode the
  /// dispatcher's reproducibility tests pin.
  bool adapt_rates = true;
  double snr_bucket_db = 2.0; ///< SNR bucket width
};

/// One prediction: expected work and expected charged seconds on a backend.
struct CostPrediction {
  double nodes = 0.0;
  double seconds = 0.0;
  bool warm = false;  ///< at least one observation backs this bucket
};

class CostModel {
 public:
  explicit CostModel(CostModelOptions opts = {});

  /// Registers a backend's rate priors; returns its id. `seconds_per_node`
  /// converts predicted node counts into charged time on that substrate;
  /// `overhead_s` is the fixed per-frame cost (preprocessing, and for
  /// offloaded backends the host<->device round trip). `precision` names the
  /// backend's datapath ("int16" for the fixed-point BFS lanes); non-fp32
  /// precisions get their own calibration buckets, since the quantized
  /// kernels have different per-node rates. Empty/"fp32" keeps the
  /// historical bucket keys, so existing exports warm-start unchanged.
  int register_backend(std::string label, double seconds_per_node,
                       double overhead_s, std::string precision = "");

  [[nodiscard]] usize backend_count() const;

  /// Predicted cost of decoding a frame with `tier` on `backend`.
  /// `prep_hit` selects the prep-cache-hit calibration bucket: a frame
  /// landing on a lane that just decoded the same channel skips the
  /// factorization, and the model learns that discount separately instead of
  /// smearing it into one bucket.
  [[nodiscard]] CostPrediction predict(const FrameFeatures& f, int backend,
                                       DecodeTier tier,
                                       bool prep_hit = false) const;

  /// Feeds one completed decode back into the matching bucket.
  void observe(const FrameFeatures& f, int backend, DecodeTier tier,
               std::uint64_t nodes_expanded, double charged_seconds,
               bool prep_hit = false);

  /// Analytic prior for the node count (no calibration): exponential in M
  /// with an SNR-dependent exponent for the sphere-decoder tier, fixed
  /// polynomial costs for the K-Best and linear tiers. Monotone:
  /// lower SNR => non-decreasing cost at fixed geometry.
  [[nodiscard]] static double prior_nodes(const FrameFeatures& f,
                                          DecodeTier tier);

  [[nodiscard]] usize bucket_count() const;
  [[nodiscard]] std::uint64_t observations() const;

  /// Serializes rates and every calibrated bucket ("spheredec.costmodel"
  /// schema, version 3: tier numbers follow the four-rung ladder with
  /// kMmseApprox = 2 and kLinear = 3; bucket keys carry a ".h0"/".h1"
  /// prep-hit suffix and, for rectangular channels, an ".r<nr>" geometry
  /// component).
  [[nodiscard]] std::string export_json() const;

  /// Restores a model exported by export_json. Accepts schema version 3 and,
  /// for warm-start continuity, versions 1 and 2: their ".t2" (old kLinear)
  /// buckets are remapped to ".t3", and v1 buckets — which predate the
  /// prep-hit split — are additionally imported as prep-miss ".h0" buckets.
  /// Backends
  /// must already be registered with matching labels (rates are
  /// overwritten). Throws sd::invalid_argument_error on malformed input or
  /// label mismatch.
  void import_json(std::string_view json);

 private:
  struct Bucket {
    double nodes_ewma = 0.0;
    double seconds_ewma = 0.0;
    std::uint64_t count = 0;
  };
  struct Rate {
    std::string label;
    double seconds_per_node = 0.0;
    double overhead_s = 0.0;
    std::string precision;  ///< ""/"fp32" = historical keys, else ".p<name>"
  };

  [[nodiscard]] std::string bucket_key(const FrameFeatures& f, int backend,
                                       DecodeTier tier, bool prep_hit) const;

  CostModelOptions opts_;
  std::vector<Rate> rates_;
  std::map<std::string, Bucket, std::less<>> buckets_;
  std::uint64_t observations_ = 0;
  mutable std::mutex mu_;
};

}  // namespace sd::dispatch
