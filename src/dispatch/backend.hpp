// Backend: one execution substrate of the heterogeneous pool, wrapped as a
// capacity-bearing device.
//
// A Backend owns N lanes. Each lane is a thread with its own bounded frame
// queue and a private ladder of detectors (the configured decoder, a K-Best
// fallback, a linear fallback), so decodes never share mutable state. The
// dispatcher places frames onto specific lanes; idle lanes of a stealing-
// enabled backend (CPU lanes) take work from their most-backlogged sibling,
// so a mispredicted placement costs occupancy, not latency.
//
// Three substrates:
//   - CpuBackend: one detector per lane built from an arbitrary DecoderSpec.
//   - FpgaBackend: each lane drives a simulated FpgaPipeline design point and
//     is paced to the *charged* device time (cycle model) plus a configurable
//     host<->device RTT — the accelerator round trip a host thread blocks on.
//     This subsumes the serve layer's old emulate_device_latency hack.
//   - ParallelSdBackend: lanes own multi-threaded sub-tree SD detectors.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/sphere_decoder.hpp"
#include "decode/channel_prep.hpp"
#include "serve/frame.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"

namespace sd::dispatch {

enum class BackendKind : std::uint8_t { kCpu, kFpga, kParallelSd };

[[nodiscard]] std::string_view backend_kind_name(BackendKind k) noexcept;

struct BackendConfig {
  BackendKind kind = BackendKind::kCpu;
  std::string label = "cpu";
  unsigned lanes = 1;
  DecoderSpec decoder;             ///< lane detector spec
  double rtt_s = 0.0;              ///< host<->device round trip (paced backends)
  bool pace_to_charged = false;    ///< sleep to charged device time + RTT
  bool allow_stealing = true;      ///< idle lanes steal from siblings
  usize lane_queue_capacity = 64;  ///< bounded depth per lane
  serve::BackpressurePolicy policy = serve::BackpressurePolicy::kBlock;
  usize batch_size = 1;            ///< max frames per own-queue pop
  /// Fuse popped same-tier frames with *different* channels into one wide
  /// block-diagonal decode (decode_wide). Off = classic behavior: only
  /// consecutive frames sharing a channel fuse. The bit-exact result is the
  /// same either way; this is a perf/ablation knob.
  bool fuse_cross_channel = true;
  /// Wide-batch former (DESIGN.md §16): when a lane pops work, it also drains
  /// compatible frames (same tier, fusable prep) from its SIBLING lanes'
  /// queues — up to a fair share of the backend's ready work — so the fused
  /// width tracks system load instead of one lane's queue depth. Claims
  /// happen under the same queue mutex as work stealing, so a claimed frame
  /// can never be stolen or decoded twice. Requires fuse_cross_channel; no-op
  /// for single-lane backends. Paced backends gather too — the run pays one
  /// RTT and sleeps to its summed charged time (see process_fused).
  bool cross_lane_former = true;
  /// Hard cap on frames per formed wide run (own pop + cross-lane gather).
  usize max_wide_width = 32;
  bool zf_fallback_on_expiry = true;
  /// Cost-model rate priors for this substrate (seconds per expanded node and
  /// fixed per-frame overhead including any RTT).
  double prior_seconds_per_node = 150e-9;
  double prior_overhead_s = 30e-6;
  /// Entries in the backend's shared channel-preprocessing cache (one per
  /// distinct (channel, PrepKind) in flight; coherence blocks need one).
  usize prep_cache_capacity = 64;
};

/// A frame bound to a (backend, lane) with its placement metadata. The
/// dispatcher fills everything; the executing lane updates `lane` /
/// `stolen` when work stealing moves it, and `charged_seconds` after decode.
struct PlacedFrame {
  serve::FrameRequest frame;
  serve::DecodeTier tier = serve::DecodeTier::kPrimary;
  int backend_id = 0;
  unsigned lane = 0;           ///< lane the frame executes on
  unsigned global_worker = 0;  ///< flattened lane index across the pool
  bool stolen = false;
  double predicted_seconds = 0.0;  ///< dispatcher's prediction at placement
  double charged_seconds = 0.0;    ///< filled by the lane after decode
  /// Set by the decoding lane: the channel factorization came from the
  /// backend's prep cache (or an earlier frame of the same popped run)
  /// instead of being rebuilt for this frame.
  bool prep_hit = false;
  /// Frame features captured at placement so the completion path can update
  /// the cost model without recomputing them.
  double snr_db = 0.0;
  double cond_proxy = 1.0;
};

/// Callbacks from lane threads into the dispatcher. Implementations must be
/// thread-safe; both run on the decode path.
class LaneSink {
 public:
  virtual ~LaneSink() = default;
  /// One frame reached a terminal state on a lane. Backend-local accounting
  /// has already happened; the sink performs dispatcher-level accounting and
  /// invokes the user completion callback.
  virtual void frame_retired(const PlacedFrame& placed,
                             serve::FrameResult&& result) = 0;
  /// `placed` moved from lane `placed.lane` to `thief_lane` before decoding.
  virtual void frame_stolen(const PlacedFrame& placed, unsigned thief_lane) = 0;
  /// The wide-batch former claimed `placed` from lane `placed.lane` into a
  /// wide run executing on `gatherer_lane`. The dispatcher-side accounting
  /// is the same rebinding a steal needs, so the default forwards there;
  /// sinks that distinguish the two can override.
  virtual void frame_gathered(const PlacedFrame& placed,
                              unsigned gatherer_lane) {
    frame_stolen(placed, gatherer_lane);
  }
};

class Backend {
 public:
  struct PushResult {
    serve::PushStatus status = serve::PushStatus::kAccepted;
    std::optional<PlacedFrame> displaced;  ///< set iff kDisplacedOldest
  };

  /// Point-in-time accounting snapshot.
  struct Snapshot {
    std::uint64_t frames = 0;      ///< retired through this backend's lanes
    std::uint64_t completed = 0;
    std::uint64_t expired_fallback = 0;
    std::uint64_t expired_dropped = 0;
    std::uint64_t steals = 0;
    std::uint64_t degraded_kbest = 0;
    std::uint64_t degraded_mmse = 0;
    std::uint64_t degraded_linear = 0;
    /// Coherence-block reuse: frames whose channel factorization was reused
    /// (cache or same popped run) vs rebuilt, fused multi-frame decode runs,
    /// and the distribution of fused-run widths (index = frames per run).
    std::uint64_t prep_hits = 0;
    std::uint64_t prep_misses = 0;
    std::uint64_t fused_runs = 0;
    std::uint64_t fused_frames = 0;
    std::vector<std::uint64_t> fused_width_counts;
    /// Wide-batch former activity: pops the former widened (with cross-lane
    /// claims and/or own-queue frames past batch_size), total CROSS-LANE
    /// frames gathered, and eligible pops that found nothing compatible to
    /// add (the former's idle/occupancy signal).
    std::uint64_t former_runs = 0;
    std::uint64_t former_gathered = 0;
    std::uint64_t former_empty = 0;
    usize in_queue = 0;
    std::vector<serve::WorkerStats> lanes;  ///< utilization filled by caller
  };

  /// Validates the config and eagerly builds (and discards) one detector so
  /// an unbuildable spec fails in the constructing thread, not in a lane.
  Backend(SystemConfig system, BackendConfig config);
  virtual ~Backend();

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  /// Spawns the lane threads. Call exactly once; `sink` must outlive close().
  void start(LaneSink& sink);

  /// Admits a frame onto lane `frame.lane` under the configured backpressure
  /// policy. Blocks iff the lane queue is full under kBlock. Thread-safe.
  [[nodiscard]] PushResult place(PlacedFrame frame);

  /// Closes all lane queues: subsequent places fail with kClosed; lanes
  /// drain every queued frame and exit. Idempotent.
  void close();

  /// Joins the lane threads (close() first).
  void join();

  [[nodiscard]] unsigned lanes() const noexcept { return cfg_.lanes; }
  [[nodiscard]] const BackendConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const SystemConfig& system() const noexcept { return system_; }

  /// Queued frames on one lane / across all lanes. Thread-safe.
  [[nodiscard]] usize queue_depth(unsigned lane) const;
  [[nodiscard]] usize queue_depth_total() const;

  [[nodiscard]] Snapshot snapshot() const;

  /// The overload-ladder tiers this backend can serve, cheapest last. Always
  /// starts with kPrimary; SD-family decoders degrade through kKBest and
  /// kMmseApprox to kLinear, fixed-complexity decoders skip the kKBest rung,
  /// an MMSE-Neumann primary degrades straight to kLinear, and linear
  /// decoders not at all.
  [[nodiscard]] const std::vector<serve::DecodeTier>& ladder() const noexcept {
    return ladder_;
  }

 protected:
  /// Builds one lane's primary detector. Overridable for tests.
  [[nodiscard]] virtual std::unique_ptr<Detector> make_lane_detector() const;

 private:
  void lane_main(unsigned lane);
  /// Blocks for work: fills `out` from the lane's own queue (up to
  /// batch_size), or steals one frame from the most-backlogged sibling when
  /// the own queue is empty. Returns false when closed and fully drained.
  bool next_batch(unsigned lane, std::vector<PlacedFrame>& out);
  /// A maximal run of consecutive frames from one popped batch that share a
  /// tier — channels may differ (interleaved cells fuse too). Resolves each
  /// DISTINCT channel in the run once through prep_cache_, then decodes the
  /// run fused (decode_wide) or falls back to per-frame process() when the
  /// detector has no cacheable phase.
  void process_run(unsigned lane, Detector& primary, Detector& kbest,
                   Detector& mmse, Detector& linear,
                   std::vector<PlacedFrame>& batch, usize begin, usize end);
  /// Fused path: expired frames peel off to their usual fallback; the live
  /// remainder decodes through one decode_wide call, each frame against its
  /// own prep — bit-identical per frame to the sequential path. `preps` is
  /// indexed parallel to [begin, end). Paced backends sleep to the run's
  /// summed charged device time plus ONE round trip — the former's
  /// amortization.
  void process_fused(
      unsigned lane, Detector& chosen, Detector& linear,
      std::vector<PlacedFrame>& batch, usize begin, usize end,
      const std::vector<std::shared_ptr<const PreprocessedChannel>>& preps);
  void process(unsigned lane, Detector& primary, Detector& kbest,
               Detector& mmse, Detector& linear, PlacedFrame& pf,
               const PreprocessedChannel* prep = nullptr);

  SystemConfig system_;
  BackendConfig cfg_;
  std::vector<serve::DecodeTier> ladder_;
  LaneSink* sink_ = nullptr;
  /// Shared across this backend's lanes: (fingerprint, kind) -> prep. Lanes
  /// of one backend serve the same coherent stream, so sharing the cache
  /// (instead of one per lane) lets a stolen or rebalanced frame still hit.
  ChannelPrepCache prep_cache_;

  /// True when this backend's lanes may form cross-lane wide runs: the
  /// config enables it, there are siblings to gather from, and the primary
  /// detector has a cacheable prep phase (probed once at construction).
  /// Paced backends qualify too: a gathered run pays ONE host<->device round
  /// trip, so forming wide runs is exactly how a device amortizes its RTT.
  bool former_enabled_ = false;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<std::deque<PlacedFrame>> queues_;
  /// Lanes currently inside next_batch (popping or blocked waiting) under
  /// mu_. The former divides the backend's ready work by this count, so a
  /// gathering lane takes a fair share instead of draining its siblings and
  /// serializing the backend.
  unsigned hungry_ = 0;
  bool closed_ = false;

  mutable std::mutex acct_mu_;
  Snapshot acct_;  ///< in_queue unused here; computed from queues_

  std::vector<std::thread> threads_;
};

/// One detector per lane, any DecoderSpec.
class CpuBackend final : public Backend {
 public:
  CpuBackend(SystemConfig system, BackendConfig config);
};

/// Simulated U280 pipeline lanes paced to charged device time + host RTT.
class FpgaBackend final : public Backend {
 public:
  FpgaBackend(SystemConfig system, BackendConfig config);
};

/// Multi-threaded sub-tree SD lanes.
class ParallelSdBackend final : public Backend {
 public:
  ParallelSdBackend(SystemConfig system, BackendConfig config);
};

/// Builds the subclass matching config.kind.
[[nodiscard]] std::unique_ptr<Backend> make_backend(const SystemConfig& system,
                                                    BackendConfig config);

/// Overwrites cfg's cost-model rate priors with the defaults for its kind
/// (plus the RTT for paced backends). parse_backend_pool applies this to
/// every entry; call it yourself when building a BackendConfig by hand.
void apply_rate_priors(BackendConfig& cfg);

/// Defaults a pool spec inherits from the server options.
struct PoolDefaults {
  DecoderSpec primary;             ///< what "cpu" resolves to
  usize lane_queue_capacity = 64;
  serve::BackpressurePolicy policy = serve::BackpressurePolicy::kBlock;
  usize batch_size = 1;
  bool fuse_cross_channel = true;
  bool cross_lane_former = true;
  usize max_wide_width = 32;
  bool zf_fallback_on_expiry = true;
  double fpga_rtt_s = 1e-3;        ///< default RTT for fpga entries
};

/// Parses a backend-pool spec: comma-separated entries of
/// `kind[:lanes][:rtt-ms=X][:opt=val...]`, e.g. "cpu:4,fpga:2:rtt-ms=1".
/// Kinds: `cpu` (the server's primary decoder), `fpga` / `fpga-base`
/// (simulated design points), `multipe` (parallel sub-tree SD), or any
/// decoder-spec name (`kbest:2:k=8`, `zf`, ...) for a CpuBackend of that
/// decoder. Bare integer fields set the lane count; remaining `key=val`
/// fields become decoder options. Throws sd::invalid_argument_error on
/// malformed specs.
[[nodiscard]] std::vector<BackendConfig> parse_backend_pool(
    std::string_view text, const PoolDefaults& defaults);

}  // namespace sd::dispatch
