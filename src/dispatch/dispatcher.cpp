#include "dispatch/dispatcher.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "core/spec_parse.hpp"
#include "mimo/constellation.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace sd::dispatch {

std::string_view placement_policy_name(PlacementPolicy p) noexcept {
  switch (p) {
    case PlacementPolicy::kRoundRobin: return "round-robin";
    case PlacementPolicy::kLeastLoaded: return "least-loaded";
    case PlacementPolicy::kCostAware: return "cost-aware";
  }
  return "?";
}

PlacementPolicy parse_placement_policy(std::string_view text) {
  if (text == "round-robin") return PlacementPolicy::kRoundRobin;
  if (text == "least-loaded") return PlacementPolicy::kLeastLoaded;
  if (text == "cost-aware") return PlacementPolicy::kCostAware;
  throw invalid_argument_error("unknown placement policy '" +
                               std::string(text) +
                               "' (round-robin, least-loaded, cost-aware)");
}

void DispatchStats::export_counters(obs::CounterRegistry& registry,
                                    std::string_view prefix) const {
  const std::string p = prefix.empty() ? "" : std::string(prefix) + ".";
  registry.set(p + "steals", steals);
  registry.set(p + "degraded.kbest", degraded_kbest);
  registry.set(p + "degraded.mmse", degraded_mmse);
  registry.set(p + "degraded.linear", degraded_linear);
  registry.set(p + "prediction.count", predictions);
  registry.set(p + "prediction.samples", prediction_samples);
  registry.set(p + "prediction.mean_rel_error", mean_rel_error);
  registry.set(p + "prediction.mean_rel_error.hit", mean_rel_error_hit);
  registry.set(p + "prediction.mean_rel_error.miss", mean_rel_error_miss);
  registry.set(p + "cost.observations", cost_observations);
  registry.set(p + "cost.buckets", cost_buckets);
  registry.set(p + "prep.cache_hit", prep_hits);
  registry.set(p + "prep.cache_miss", prep_misses);
  registry.set(p + "fused.runs", fused_runs);
  registry.set(p + "fused.frames", fused_frames);
  for (usize w = 0; w < fused_width_counts.size(); ++w) {
    if (fused_width_counts[w] == 0) continue;
    registry.set(p + "fused.width." + std::to_string(w),
                 fused_width_counts[w]);
  }
  registry.set(p + "former.runs", former_runs);
  registry.set(p + "former.gathered", former_gathered);
  registry.set(p + "former.empty", former_empty);
}

namespace {

[[nodiscard]] bool ladder_has(const std::vector<serve::DecodeTier>& ladder,
                              serve::DecodeTier t) {
  return std::find(ladder.begin(), ladder.end(), t) != ladder.end();
}

/// The work *shape* a tier costs on a backend, for cost-model bucketing: a
/// K-Best backend's primary decode is K-Best-shaped work, so its primary-tier
/// predictions and a degraded-to-K-Best placement share one bucket.
[[nodiscard]] serve::DecodeTier cost_shape(const Backend& b,
                                           serve::DecodeTier tier) {
  if (tier != serve::DecodeTier::kPrimary) return tier;
  switch (b.config().decoder.strategy) {
    case Strategy::kMrc:
    case Strategy::kZf:
    case Strategy::kMmse:
      return serve::DecodeTier::kLinear;
    case Strategy::kKBest:
    case Strategy::kFsd:
      return serve::DecodeTier::kKBest;
    case Strategy::kMmseNeumann:
      return serve::DecodeTier::kMmseApprox;
    default:
      return serve::DecodeTier::kPrimary;
  }
}

[[nodiscard]] double seconds_between(serve::Clock::time_point a,
                                     serve::Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

Dispatcher::Dispatcher(SystemConfig system, std::vector<BackendConfig> configs,
                       DispatcherOptions options,
                       serve::CompletionFn on_complete)
    : system_(system),
      opts_(options),
      on_complete_(std::move(on_complete)),
      cost_(options.cost),
      queue_wait_h_(0.0, options.histogram_max_s, options.histogram_buckets),
      service_h_(0.0, options.histogram_max_s, options.histogram_buckets),
      e2e_h_(0.0, options.histogram_max_s, options.histogram_buckets) {
  SD_CHECK(!configs.empty(), "dispatcher needs at least one backend");
  mod_order_ = Constellation::get(system_.modulation).order();
  backends_.reserve(configs.size());
  lane_base_.reserve(configs.size());
  per_backend_.reserve(configs.size());
  for (BackendConfig& cfg : configs) {
    const int id = cost_.register_backend(
        cfg.label, cfg.prior_seconds_per_node, cfg.prior_overhead_s,
        std::string(decoder_precision_name(cfg.decoder)));
    SD_CHECK(id == static_cast<int>(backends_.size()),
             "cost-model backend ids must track pool order");
    lane_base_.push_back(total_lanes_);
    std::unique_ptr<Backend> b = make_backend(system_, std::move(cfg));
    total_lanes_ += b->lanes();
    backends_.push_back(std::move(b));
    per_backend_.emplace_back(options.histogram_max_s,
                              options.histogram_buckets);
  }
  pending_s_.assign(total_lanes_, 0.0);
  lane_last_fp_.assign(total_lanes_, 0);
  start_ = serve::Clock::now();
  for (auto& b : backends_) b->start(*this);
}

Dispatcher::~Dispatcher() { drain(); }

double Dispatcher::cheapest_prediction(const FrameFeatures& f,
                                       serve::DecodeTier tier) {
  double best = std::numeric_limits<double>::infinity();
  for (usize b = 0; b < backends_.size(); ++b) {
    if (!ladder_has(backends_[b]->ladder(), tier)) continue;
    best = std::min(best, cost_.predict(f, static_cast<int>(b),
                                        cost_shape(*backends_[b], tier))
                              .seconds);
  }
  return best;
}

Dispatcher::Placement Dispatcher::choose(const FrameFeatures& f,
                                         double deadline_s,
                                         std::uint64_t channel_fp,
                                         serve::DecodeTier start_tier) {
  // A lane whose previous frame carried the same channel fingerprint will
  // find the factorization in the backend's prep cache — predict it from
  // the hit-calibrated buckets.
  const auto lane_is_hit = [&](unsigned global_lane) {
    return channel_fp != 0 && lane_last_fp_[global_lane] == channel_fp;
  };
  Placement p;
  switch (opts_.policy) {
    case PlacementPolicy::kRoundRobin: {
      const auto g =
          static_cast<unsigned>(rr_next_++ % static_cast<std::uint64_t>(total_lanes_));
      for (usize b = 0; b < backends_.size(); ++b) {
        if (g < lane_base_[b] + backends_[b]->lanes()) {
          p.backend = static_cast<int>(b);
          p.lane = g - lane_base_[b];
          break;
        }
      }
      p.tier = start_tier;
      break;
    }
    case PlacementPolicy::kLeastLoaded: {
      usize best_depth = std::numeric_limits<usize>::max();
      for (usize b = 0; b < backends_.size(); ++b) {
        for (unsigned l = 0; l < backends_[b]->lanes(); ++l) {
          const usize d = backends_[b]->queue_depth(l);
          if (d < best_depth) {
            best_depth = d;
            p.backend = static_cast<int>(b);
            p.lane = l;
          }
        }
      }
      p.tier = start_tier;
      break;
    }
    case PlacementPolicy::kCostAware: {
      // Per backend: its least-pending lane (the lane the frame would join).
      struct Cand {
        unsigned lane = 0;
        double pending = 0.0;
      };
      std::vector<Cand> cand(backends_.size());
      for (usize b = 0; b < backends_.size(); ++b) {
        Cand c;
        c.pending = std::numeric_limits<double>::infinity();
        for (unsigned l = 0; l < backends_[b]->lanes(); ++l) {
          const double pend = pending_s_[lane_base_[b] + l];
          if (pend < c.pending) {
            c.pending = pend;
            c.lane = l;
          }
        }
        cand[b] = c;
      }
      // Walk the ladder: take the first tier whose best placement meets the
      // deadline; if none does, serve the cheapest tier anyway — the ladder
      // sheds work, never frames. Admission control may pin a floor
      // (start_tier): rungs above it are skipped. If no backend ladder
      // serves any rung at or below the floor, a second pass lifts the
      // restriction rather than dropping the frame.
      static constexpr serve::DecodeTier kTiers[] = {
          serve::DecodeTier::kPrimary, serve::DecodeTier::kKBest,
          serve::DecodeTier::kMmseApprox, serve::DecodeTier::kLinear};
      bool chosen = false;
      for (int pass = 0; pass < 2 && !chosen; ++pass) {
      const serve::DecodeTier floor =
          pass == 0 ? start_tier : serve::DecodeTier::kPrimary;
      for (serve::DecodeTier tier : kTiers) {
        if (static_cast<int>(tier) < static_cast<int>(floor)) continue;
        int best_b = -1;
        unsigned best_lane = 0;
        double best_eta = std::numeric_limits<double>::infinity();
        double best_pred = 0.0;
        for (usize b = 0; b < backends_.size(); ++b) {
          if (!ladder_has(backends_[b]->ladder(), tier)) continue;
          const double pred =
              cost_.predict(f, static_cast<int>(b),
                            cost_shape(*backends_[b], tier),
                            lane_is_hit(lane_base_[b] + cand[b].lane))
                  .seconds;
          const double eta = cand[b].pending + pred;
          if (eta < best_eta) {
            best_eta = eta;
            best_b = static_cast<int>(b);
            best_lane = cand[b].lane;
            best_pred = pred;
          }
        }
        if (best_b < 0) continue;  // no backend serves this tier
        p.backend = best_b;
        p.lane = best_lane;
        p.tier = tier;
        p.predicted_seconds = best_pred;
        chosen = true;
        const bool must_degrade = opts_.degrade_on_deadline &&
                                  deadline_s > 0.0 && best_eta > deadline_s;
        if (!must_degrade) break;  // this tier fits (or degrading is off)
      }
      }
      SD_ASSERT(chosen);  // every backend ladder contains kPrimary
      return p;
    }
  }
  p.predicted_seconds =
      cost_.predict(f, p.backend, cost_shape(*backends_[p.backend], p.tier),
                    lane_is_hit(lane_base_[static_cast<usize>(p.backend)] +
                                p.lane))
          .seconds;
  return p;
}

serve::SubmitStatus Dispatcher::submit(serve::FrameRequest frame) {
  SD_TRACE_SPAN("dispatch.submit");
  SD_CHECK(frame.channel.valid(), "frame carries no channel estimate");
  SD_CHECK(frame.h().rows() == static_cast<index_t>(frame.y.size()),
           "frame y length does not match channel rows");
  SD_CHECK(frame.h().cols() == system_.num_tx,
           "frame channel columns do not match the served system");
  if (frame.submit_time == serve::Clock::time_point{}) {
    frame.submit_time = serve::Clock::now();
  }

  const FrameFeatures f =
      FrameFeatures::extract(frame.h(), frame.sigma2, mod_order_);
  Placement p;
  {
    std::lock_guard<std::mutex> lock(place_mu_);
    p = choose(f, frame.deadline_s, frame.channel.fingerprint(),
               frame.start_tier);
    const unsigned g = lane_base_[static_cast<usize>(p.backend)] + p.lane;
    pending_s_[g] += p.predicted_seconds;
    // Record the channel affinity: the next frame placed on this lane with
    // the same fingerprint is predicted (and costed) as a prep-cache hit.
    lane_last_fp_[g] = frame.channel.fingerprint();
  }
  const unsigned global = lane_base_[static_cast<usize>(p.backend)] + p.lane;
  const auto rollback_pending = [&] {
    std::lock_guard<std::mutex> lock(place_mu_);
    pending_s_[global] =
        std::max(0.0, pending_s_[global] - p.predicted_seconds);
  };

  PlacedFrame pf;
  pf.frame = std::move(frame);
  pf.tier = p.tier;
  pf.backend_id = p.backend;
  pf.lane = p.lane;
  pf.global_worker = global;
  pf.predicted_seconds = p.predicted_seconds;
  pf.snr_db = f.snr_db;
  pf.cond_proxy = f.cond_proxy;

  Backend::PushResult pushed =
      backends_[static_cast<usize>(p.backend)]->place(std::move(pf));
  if (pushed.status == serve::PushStatus::kClosed) {
    rollback_pending();
    return serve::SubmitStatus::kClosed;
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    ++submitted_;
    PerBackend& pb = per_backend_[static_cast<usize>(p.backend)];
    ++pb.submitted;
    if (p.tier == serve::DecodeTier::kKBest) ++degraded_kbest_;
    if (p.tier == serve::DecodeTier::kMmseApprox) ++degraded_mmse_;
    if (p.tier == serve::DecodeTier::kLinear) ++degraded_linear_;
    if (pushed.status == serve::PushStatus::kRejected) {
      ++rejected_;
      ++pb.rejected;
    }
    if (pushed.status == serve::PushStatus::kDisplacedOldest) {
      ++evicted_;
      ++pb.evicted;
    }
  }
  if (pushed.status == serve::PushStatus::kRejected) {
    rollback_pending();
    return serve::SubmitStatus::kRejected;
  }
  if (pushed.status == serve::PushStatus::kDisplacedOldest) {
    account_evicted(*pushed.displaced);
  }
  return serve::SubmitStatus::kAccepted;
}

void Dispatcher::account_evicted(const PlacedFrame& displaced) {
  {
    std::lock_guard<std::mutex> lock(place_mu_);
    double& pend = pending_s_[displaced.global_worker];
    pend = std::max(0.0, pend - displaced.predicted_seconds);
  }
  // The displaced frame reaches its terminal state here, on the submitting
  // thread: report it so the producer can account for every frame.
  serve::FrameResult r;
  r.id = displaced.frame.id;
  r.status = serve::FrameStatus::kEvicted;
  r.worker_id = displaced.global_worker;
  r.backend_id = displaced.backend_id;
  r.lane_id = displaced.lane;
  r.tier = displaced.tier;
  r.queue_wait_s =
      seconds_between(displaced.frame.submit_time, serve::Clock::now());
  r.e2e_s = r.queue_wait_s;
  if (on_complete_) on_complete_(r);
}

void Dispatcher::frame_stolen(const PlacedFrame& placed, unsigned thief_lane) {
  std::lock_guard<std::mutex> lock(place_mu_);
  const unsigned old_g = placed.global_worker;
  const unsigned new_g = old_g - placed.lane + thief_lane;
  double& old_pend = pending_s_[old_g];
  old_pend = std::max(0.0, old_pend - placed.predicted_seconds);
  pending_s_[new_g] += placed.predicted_seconds;
  // The thief lane will decode this channel next; keep the affinity signal
  // honest for subsequent placements.
  lane_last_fp_[new_g] = placed.frame.channel.fingerprint();
}

void Dispatcher::frame_retired(const PlacedFrame& placed,
                               serve::FrameResult&& result) {
  {
    std::lock_guard<std::mutex> lock(place_mu_);
    double& pend = pending_s_[placed.global_worker];
    pend = std::max(0.0, pend - placed.predicted_seconds);
  }
  const auto b = static_cast<usize>(placed.backend_id);
  if (result.status == serve::FrameStatus::kCompleted) {
    // Close the calibration loop: real decodes at the placed tier feed their
    // observed work and occupancy back into the matching bucket.
    FrameFeatures f;
    f.num_tx = system_.num_tx;
    f.num_rx = placed.frame.h().rows();
    f.mod_order = mod_order_;
    f.sigma2 = placed.frame.sigma2;
    f.snr_db = placed.snr_db;
    f.cond_proxy = placed.cond_proxy;
    cost_.observe(f, placed.backend_id, cost_shape(*backends_[b], placed.tier),
                  result.result.stats.nodes_expanded, placed.charged_seconds,
                  placed.prep_hit);
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    PerBackend& pb = per_backend_[b];
    switch (result.status) {
      case serve::FrameStatus::kCompleted:
        ++completed_;
        ++pb.completed;
        break;
      case serve::FrameStatus::kExpiredFallback:
        ++expired_fallback_;
        ++pb.expired_fallback;
        break;
      case serve::FrameStatus::kExpiredDropped:
        ++expired_dropped_;
        ++pb.expired_dropped;
        break;
      case serve::FrameStatus::kEvicted:
        break;  // accounted at submit
    }
    if (result.deadline_missed) {
      ++deadline_misses_;
      ++pb.deadline_misses;
    }
    queue_wait_h_.record(result.queue_wait_s);
    service_h_.record(result.service_s);
    e2e_h_.record(result.e2e_s);
    pb.queue_wait.record(result.queue_wait_s);
    pb.service.record(result.service_s);
    pb.e2e.record(result.e2e_s);
    if (result.status == serve::FrameStatus::kCompleted &&
        placed.predicted_seconds > 0.0) {
      ++predictions_;
      // Exclude each backend's cold-start frames from the reported error:
      // the model has nothing to have learned from yet.
      if (pb.completed > opts_.prediction_warmup) {
        const double actual = placed.charged_seconds;
        const double denom =
            std::max({placed.predicted_seconds, actual, 1e-12});
        const double err =
            std::abs(placed.predicted_seconds - actual) / denom;
        prediction_abs_rel_err_sum_ += err;
        ++prediction_samples_;
        // Split by prep-cache outcome so the report shows whether the
        // hit/miss buckets have actually diverged.
        if (placed.prep_hit) {
          prediction_err_sum_hit_ += err;
          ++prediction_samples_hit_;
        } else {
          prediction_err_sum_miss_ += err;
          ++prediction_samples_miss_;
        }
      }
    }
  }
  if (on_complete_) on_complete_(result);
}

void Dispatcher::drain() {
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    if (drained_) return;
    drained_ = true;
  }
  for (auto& b : backends_) b->close();
  for (auto& b : backends_) b->join();
  std::lock_guard<std::mutex> lock(metrics_mu_);
  drained_wall_s_ = seconds_between(start_, serve::Clock::now());
}

serve::ServerMetrics Dispatcher::metrics() const {
  usize queued_now = 0;
  std::vector<Backend::Snapshot> snaps;
  snaps.reserve(backends_.size());
  for (const auto& b : backends_) {
    snaps.push_back(b->snapshot());
    queued_now += snaps.back().in_queue;
  }
  std::lock_guard<std::mutex> lock(metrics_mu_);
  serve::ServerMetrics m;
  m.submitted = submitted_;
  m.completed = completed_;
  m.expired_fallback = expired_fallback_;
  m.expired_dropped = expired_dropped_;
  m.evicted = evicted_;
  m.rejected = rejected_;
  m.deadline_misses = deadline_misses_;
  m.in_queue = queued_now;
  m.wall_seconds = drained_wall_s_ >= 0.0
                       ? drained_wall_s_
                       : seconds_between(start_, serve::Clock::now());
  m.throughput_fps = m.wall_seconds > 0.0
                         ? static_cast<double>(m.retired()) / m.wall_seconds
                         : 0.0;
  m.queue_wait = serve::summarize_latency(queue_wait_h_);
  m.service = serve::summarize_latency(service_h_);
  m.e2e = serve::summarize_latency(e2e_h_);
  m.workers.reserve(total_lanes_);
  for (const Backend::Snapshot& s : snaps) {
    for (const serve::WorkerStats& lane : s.lanes) {
      serve::WorkerStats w = lane;
      w.utilization =
          m.wall_seconds > 0.0 ? w.busy_seconds / m.wall_seconds : 0.0;
      m.workers.push_back(w);
    }
  }
  return m;
}

std::vector<BackendMetrics> Dispatcher::backend_metrics() const {
  std::vector<BackendMetrics> out;
  out.reserve(backends_.size());
  for (usize b = 0; b < backends_.size(); ++b) {
    const Backend::Snapshot snap = backends_[b]->snapshot();
    BackendMetrics bm;
    bm.label = backends_[b]->config().label;
    bm.kind = backends_[b]->config().kind;
    bm.lanes = backends_[b]->lanes();
    bm.steals = snap.steals;
    bm.degraded_kbest = snap.degraded_kbest;
    bm.degraded_mmse = snap.degraded_mmse;
    bm.degraded_linear = snap.degraded_linear;
    bm.fused_runs = snap.fused_runs;
    bm.fused_frames = snap.fused_frames;
    bm.fused_width_counts = snap.fused_width_counts;
    bm.former_runs = snap.former_runs;
    bm.former_gathered = snap.former_gathered;
    bm.former_empty = snap.former_empty;
    std::lock_guard<std::mutex> lock(metrics_mu_);
    const PerBackend& pb = per_backend_[b];
    serve::ServerMetrics& m = bm.metrics;
    m.submitted = pb.submitted;
    m.completed = pb.completed;
    m.expired_fallback = pb.expired_fallback;
    m.expired_dropped = pb.expired_dropped;
    m.evicted = pb.evicted;
    m.rejected = pb.rejected;
    m.deadline_misses = pb.deadline_misses;
    m.in_queue = snap.in_queue;
    m.wall_seconds = drained_wall_s_ >= 0.0
                         ? drained_wall_s_
                         : seconds_between(start_, serve::Clock::now());
    m.throughput_fps = m.wall_seconds > 0.0
                           ? static_cast<double>(m.retired()) / m.wall_seconds
                           : 0.0;
    m.queue_wait = serve::summarize_latency(pb.queue_wait);
    m.service = serve::summarize_latency(pb.service);
    m.e2e = serve::summarize_latency(pb.e2e);
    m.workers = snap.lanes;
    for (serve::WorkerStats& w : m.workers) {
      w.utilization =
          m.wall_seconds > 0.0 ? w.busy_seconds / m.wall_seconds : 0.0;
    }
    out.push_back(std::move(bm));
  }
  return out;
}

DispatchStats Dispatcher::stats() const {
  DispatchStats s;
  for (const auto& b : backends_) {
    const Backend::Snapshot snap = b->snapshot();
    s.steals += snap.steals;
    s.prep_hits += snap.prep_hits;
    s.prep_misses += snap.prep_misses;
    s.fused_runs += snap.fused_runs;
    s.fused_frames += snap.fused_frames;
    s.former_runs += snap.former_runs;
    s.former_gathered += snap.former_gathered;
    s.former_empty += snap.former_empty;
    if (snap.fused_width_counts.size() > s.fused_width_counts.size()) {
      s.fused_width_counts.resize(snap.fused_width_counts.size(), 0);
    }
    for (usize w = 0; w < snap.fused_width_counts.size(); ++w) {
      s.fused_width_counts[w] += snap.fused_width_counts[w];
    }
  }
  std::lock_guard<std::mutex> lock(metrics_mu_);
  s.degraded_kbest = degraded_kbest_;
  s.degraded_mmse = degraded_mmse_;
  s.degraded_linear = degraded_linear_;
  s.predictions = predictions_;
  s.prediction_samples = prediction_samples_;
  s.mean_rel_error = prediction_samples_ > 0
                         ? prediction_abs_rel_err_sum_ /
                               static_cast<double>(prediction_samples_)
                         : 0.0;
  s.prediction_samples_hit = prediction_samples_hit_;
  s.prediction_samples_miss = prediction_samples_miss_;
  s.mean_rel_error_hit =
      prediction_samples_hit_ > 0
          ? prediction_err_sum_hit_ /
                static_cast<double>(prediction_samples_hit_)
          : 0.0;
  s.mean_rel_error_miss =
      prediction_samples_miss_ > 0
          ? prediction_err_sum_miss_ /
                static_cast<double>(prediction_samples_miss_)
          : 0.0;
  s.cost_observations = cost_.observations();
  s.cost_buckets = cost_.bucket_count();
  return s;
}

}  // namespace sd::dispatch
