#include "dispatch/cost_model.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "mimo/channel.hpp"
#include "obs/json.hpp"

namespace sd::dispatch {

FrameFeatures FrameFeatures::extract(const CMat& h, double sigma2,
                                     index_t mod_order) {
  FrameFeatures f;
  f.num_tx = h.cols();
  f.num_rx = h.rows();
  f.mod_order = mod_order;
  f.sigma2 = sigma2;
  f.snr_db = sigma2 > 0.0 && h.cols() > 0 ? sigma2_to_snr_db(sigma2, h.cols())
                                          : 60.0;
  double min_norm = std::numeric_limits<double>::infinity();
  double max_norm = 0.0;
  for (index_t c = 0; c < h.cols(); ++c) {
    double norm2 = 0.0;
    for (index_t r = 0; r < h.rows(); ++r) norm2 += std::norm(h(r, c));
    min_norm = std::min(min_norm, norm2);
    max_norm = std::max(max_norm, norm2);
  }
  f.cond_proxy =
      min_norm > 0.0 ? std::sqrt(max_norm / min_norm) : 16.0;  // clamp target
  f.cond_proxy = std::clamp(f.cond_proxy, 1.0, 16.0);
  return f;
}

CostModel::CostModel(CostModelOptions opts) : opts_(opts) {
  SD_CHECK(opts_.ewma_alpha > 0.0 && opts_.ewma_alpha <= 1.0,
           "EWMA alpha must be in (0, 1]");
  SD_CHECK(opts_.snr_bucket_db > 0.0, "SNR bucket width must be positive");
}

int CostModel::register_backend(std::string label, double seconds_per_node,
                                double overhead_s, std::string precision) {
  SD_CHECK(seconds_per_node > 0.0 && overhead_s >= 0.0,
           "cost-model rate priors must be positive");
  std::lock_guard<std::mutex> lock(mu_);
  rates_.push_back(
      {std::move(label), seconds_per_node, overhead_s, std::move(precision)});
  return static_cast<int>(rates_.size()) - 1;
}

usize CostModel::backend_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rates_.size();
}

double CostModel::prior_nodes(const FrameFeatures& f, DecodeTier tier) {
  const double m = std::max<double>(1.0, static_cast<double>(f.num_tx));
  const double order = std::max<double>(2.0, static_cast<double>(f.mod_order));
  switch (tier) {
    case DecodeTier::kLinear:
      return m * m;  // equalize-and-slice: one small solve
    case DecodeTier::kKBest:
      return m * 8.0 * order;  // fixed-width survivor expansion
    case DecodeTier::kMmseApprox: {
      // Gram-domain MMSE with a Neumann-series inverse: a few m x m Jacobi
      // sweeps — but the series only converges when A = G + sigma2 I is
      // diagonally dominant, i.e. the channel is tall. The penalty diverges
      // as N_r -> M (the residual guard would fall back to exact Cholesky
      // per frame), so square channels route to tree search and tall
      // massive-MIMO channels route here.
      const double nr =
          f.num_rx > 0 ? std::max(m, static_cast<double>(f.num_rx)) : m;
      const double dominance = 1.0 - std::sqrt(m / nr);
      const double penalty = 1.0 / std::max(1.0 / 64.0, dominance);
      return 0.5 * m * m * penalty;
    }
    case DecodeTier::kPrimary:
      break;
  }
  // Sphere decoding: the explored-tree size grows exponentially in M with a
  // noise-dependent exponent (the paper's complexity curves). gamma shrinks
  // monotonically with SNR, so lower SNR => non-decreasing predicted cost.
  const double snr_lin = std::max(std::pow(10.0, f.snr_db / 10.0), 1e-3);
  const double gamma = 0.2 + 1.1 / (1.0 + snr_lin / 6.0);
  const double cond = std::clamp(f.cond_proxy, 1.0, 16.0);
  return m * order * std::pow(order, 0.25 * m * gamma) * std::sqrt(cond);
}

std::string CostModel::bucket_key(const FrameFeatures& f, int backend,
                                  DecodeTier tier, bool prep_hit) const {
  const long snr_bucket =
      std::lround(std::floor(f.snr_db / opts_.snr_bucket_db));
  const long cond_bucket = std::lround(
      std::floor(std::log2(std::clamp(f.cond_proxy, 1.0, 16.0))));
  std::ostringstream key;
  key << 'b' << backend << ".t" << static_cast<int>(tier) << ".m" << f.num_tx
      << ".q" << f.mod_order << ".s" << snr_bucket << ".c" << cond_bucket;
  // Rectangular channels calibrate separately (a 128x8 decode costs nothing
  // like an 8x8 one); square frames keep the historical key shape so v1-v3
  // exports warm-start the same buckets they always did.
  if (f.num_rx > 0 && f.num_rx != f.num_tx) key << ".r" << f.num_rx;
  key << (prep_hit ? ".h1" : ".h0");
  // Non-fp32 datapaths calibrate separately; fp32/empty keeps the historical
  // key shape so v1/v2 exports warm-start the same buckets they always did.
  const std::string& precision = rates_[static_cast<usize>(backend)].precision;
  if (!precision.empty() && precision != "fp32") key << ".p" << precision;
  return key.str();
}

CostPrediction CostModel::predict(const FrameFeatures& f, int backend,
                                  DecodeTier tier, bool prep_hit) const {
  std::lock_guard<std::mutex> lock(mu_);
  SD_CHECK(backend >= 0 && static_cast<usize>(backend) < rates_.size(),
           "cost-model backend id out of range");
  const Rate& rate = rates_[static_cast<usize>(backend)];
  CostPrediction p;
  const auto it = buckets_.find(bucket_key(f, backend, tier, prep_hit));
  if (it != buckets_.end() && it->second.count > 0) {
    p.warm = true;
    p.nodes = it->second.nodes_ewma;
    if (opts_.adapt_rates) {
      p.seconds = it->second.seconds_ewma;
      return p;
    }
  } else {
    p.nodes = prior_nodes(f, tier);
  }
  p.seconds = rate.overhead_s + p.nodes * rate.seconds_per_node;
  return p;
}

void CostModel::observe(const FrameFeatures& f, int backend, DecodeTier tier,
                        std::uint64_t nodes_expanded, double charged_seconds,
                        bool prep_hit) {
  std::lock_guard<std::mutex> lock(mu_);
  SD_CHECK(backend >= 0 && static_cast<usize>(backend) < rates_.size(),
           "cost-model backend id out of range");
  Bucket& b = buckets_[bucket_key(f, backend, tier, prep_hit)];
  // Node counts are heavy-tailed (rare frames explore 10x the typical tree),
  // so the smoothing runs in log domain: the bucket tracks the geometric
  // mean, which predicts the *typical* frame instead of being dragged up by
  // spikes. Floors keep log() defined for zero-node linear decodes and
  // sub-resolution timer readings.
  const double nodes = std::max(static_cast<double>(nodes_expanded), 1.0);
  const double seconds = std::max(charged_seconds, 1e-9);
  if (b.count == 0) {
    b.nodes_ewma = nodes;
    b.seconds_ewma = seconds;
  } else {
    const double a = opts_.ewma_alpha;
    b.nodes_ewma =
        std::exp(std::log(b.nodes_ewma) + a * (std::log(nodes) - std::log(b.nodes_ewma)));
    b.seconds_ewma = std::exp(std::log(b.seconds_ewma) +
                              a * (std::log(seconds) - std::log(b.seconds_ewma)));
  }
  ++b.count;
  ++observations_;
}

usize CostModel::bucket_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_.size();
}

std::uint64_t CostModel::observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observations_;
}

std::string CostModel::export_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("spheredec.costmodel");
  w.key("schema_version").value(std::int64_t{3});
  w.key("ewma_alpha").value(opts_.ewma_alpha);
  w.key("snr_bucket_db").value(opts_.snr_bucket_db);
  w.key("backends").begin_array();
  for (const Rate& r : rates_) {
    w.begin_object();
    w.key("label").value(r.label);
    w.key("seconds_per_node").value(r.seconds_per_node);
    w.key("overhead_s").value(r.overhead_s);
    // Written only for non-default datapaths: fp32 documents stay
    // byte-compatible with pre-precision readers.
    if (!r.precision.empty()) w.key("precision").value(r.precision);
    w.end_object();
  }
  w.end_array();
  w.key("buckets").begin_object();
  for (const auto& [key, b] : buckets_) {
    w.key(key).begin_object();
    w.key("nodes").value(b.nodes_ewma);
    w.key("seconds").value(b.seconds_ewma);
    w.key("count").value(b.count);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

namespace {

// Minimal recursive-descent reader for the exact document shape export_json
// emits (objects, arrays, strings, numbers). Not a general JSON library —
// anything outside the cost-model schema is rejected with a pointed error.
class MiniParser {
 public:
  explicit MiniParser(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  [[nodiscard]] bool consume_if(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        c = text_[pos_++];
        if (c != '"' && c != '\\' && c != '/') {
          fail("unsupported escape in cost-model document");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  [[nodiscard]] double parse_number() {
    skip_ws();
    const usize start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    const std::string token(text_.substr(start, pos_ - start));
    usize consumed = 0;
    double v = 0.0;
    try {
      v = std::stod(token, &consumed);
    } catch (const std::exception&) {
      fail("bad number '" + token + "'");
    }
    if (consumed != token.size()) fail("bad number '" + token + "'");
    return v;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw invalid_argument_error("cost-model JSON: " + what + " at offset " +
                                 std::to_string(pos_));
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

 private:
  std::string_view text_;
  usize pos_ = 0;
};

}  // namespace

void CostModel::import_json(std::string_view json) {
  MiniParser p(json);
  std::vector<Rate> rates;
  std::map<std::string, Bucket, std::less<>> buckets;
  bool schema_ok = false;
  long version = 0;

  p.expect('{');
  bool first = true;
  while (!p.consume_if('}')) {
    if (!first) p.expect(',');
    first = false;
    const std::string key = p.parse_string();
    p.expect(':');
    if (key == "schema") {
      if (p.parse_string() != "spheredec.costmodel") {
        p.fail("wrong schema tag");
      }
      schema_ok = true;
    } else if (key == "schema_version") {
      const double v = p.parse_number();
      if (v != 1.0 && v != 2.0 && v != 3.0) p.fail("unsupported schema_version");
      version = static_cast<long>(v);
    } else if (key == "ewma_alpha" || key == "snr_bucket_db") {
      (void)p.parse_number();  // informational; options stay as constructed
    } else if (key == "backends") {
      p.expect('[');
      bool first_backend = true;
      while (!p.consume_if(']')) {
        if (!first_backend) p.expect(',');
        first_backend = false;
        Rate r;
        p.expect('{');
        bool first_field = true;
        while (!p.consume_if('}')) {
          if (!first_field) p.expect(',');
          first_field = false;
          const std::string field = p.parse_string();
          p.expect(':');
          if (field == "label") {
            r.label = p.parse_string();
          } else if (field == "seconds_per_node") {
            r.seconds_per_node = p.parse_number();
          } else if (field == "overhead_s") {
            r.overhead_s = p.parse_number();
          } else if (field == "precision") {
            r.precision = p.parse_string();
          } else {
            p.fail("unknown backend field '" + field + "'");
          }
        }
        if (r.seconds_per_node <= 0.0 || r.overhead_s < 0.0) {
          p.fail("backend '" + r.label + "' has invalid rates");
        }
        rates.push_back(std::move(r));
      }
    } else if (key == "buckets") {
      p.expect('{');
      bool first_bucket = true;
      while (!p.consume_if('}')) {
        if (!first_bucket) p.expect(',');
        first_bucket = false;
        const std::string bucket_name = p.parse_string();
        p.expect(':');
        Bucket b;
        p.expect('{');
        bool first_field = true;
        while (!p.consume_if('}')) {
          if (!first_field) p.expect(',');
          first_field = false;
          const std::string field = p.parse_string();
          p.expect(':');
          if (field == "nodes") {
            b.nodes_ewma = p.parse_number();
          } else if (field == "seconds") {
            b.seconds_ewma = p.parse_number();
          } else if (field == "count") {
            b.count = static_cast<std::uint64_t>(p.parse_number());
          } else {
            p.fail("unknown bucket field '" + field + "'");
          }
        }
        if (b.nodes_ewma < 0.0 || b.seconds_ewma < 0.0) {
          p.fail("bucket '" + bucket_name + "' has negative state");
        }
        // Same floors observe() applies, so the log-domain blend stays
        // defined for every imported bucket.
        if (b.count > 0) {
          b.nodes_ewma = std::max(b.nodes_ewma, 1.0);
          b.seconds_ewma = std::max(b.seconds_ewma, 1e-9);
        }
        buckets.emplace(bucket_name, b);
      }
    } else {
      p.fail("unknown top-level key '" + key + "'");
    }
  }
  if (!p.at_end()) p.fail("trailing content");
  if (!schema_ok) {
    throw invalid_argument_error("cost-model JSON: missing schema tag");
  }
  if (version < 2) {
    // v1 shim: buckets predate the prep-hit key dimension. A v1 soak never
    // reused a cached factorization, so its buckets are prep-miss buckets.
    std::map<std::string, Bucket, std::less<>> upgraded;
    for (auto& [key, b] : buckets) upgraded.emplace(key + ".h0", b);
    buckets = std::move(upgraded);
  }
  if (version < 3) {
    // v3 renumbered the tier ladder to make room for kMmseApprox = 2: the
    // old kLinear buckets (".t2") become ".t3". The tier component appears
    // exactly once, right after the backend id, so a first-occurrence
    // replace is safe.
    std::map<std::string, Bucket, std::less<>> upgraded;
    for (auto& [key, b] : buckets) {
      std::string k = key;
      const auto pos = k.find(".t2.");
      if (pos != std::string::npos) k.replace(pos, 4, ".t3.");
      upgraded.emplace(std::move(k), b);
    }
    buckets = std::move(upgraded);
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (!rates_.empty()) {
    if (rates.size() != rates_.size()) {
      throw invalid_argument_error(
          "cost-model JSON: backend count mismatch (document has " +
          std::to_string(rates.size()) + ", model has " +
          std::to_string(rates_.size()) + ")");
    }
    for (usize i = 0; i < rates.size(); ++i) {
      if (rates[i].label != rates_[i].label) {
        throw invalid_argument_error("cost-model JSON: backend " +
                                     std::to_string(i) + " is '" +
                                     rates[i].label + "', model expects '" +
                                     rates_[i].label + "'");
      }
      // Documents that predate the precision field keep the registered
      // datapath, so post-import bucket keys match pre-import ones.
      if (rates[i].precision.empty()) rates[i].precision = rates_[i].precision;
    }
  }
  rates_ = std::move(rates);
  buckets_ = std::move(buckets);
  observations_ = 0;
  for (const auto& [key, b] : buckets_) observations_ += b.count;
}

}  // namespace sd::dispatch
