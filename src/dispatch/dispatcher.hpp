// Dispatcher: cost-model-driven frame placement over a heterogeneous
// backend pool.
//
// The serve layer's original worker pool treated every worker as
// interchangeable — correct when the pool is N clones of one detector, and
// wasteful the moment it isn't. A base station fronting both host software
// decoders and accelerator cards wants easy frames (high SNR, shallow search)
// on whatever is free and hard frames on the substrate that finishes them
// before the deadline. The Dispatcher makes that call per frame:
//
//   submit(frame)
//     -> FrameFeatures::extract          (SNR, geometry, conditioning proxy)
//     -> CostModel::predict per backend  (EWMA-calibrated analytic prior)
//     -> placement policy                (round-robin / least-loaded /
//                                         cost-aware + overload ladder)
//     -> Backend::place on a lane queue  (bounded, per-lane backpressure)
//
// The cost-aware policy minimizes predicted completion time: each global
// lane carries a running sum of the predicted seconds already queued on it,
// and a frame goes where (pending + predicted) is smallest. When even the
// best placement cannot meet the frame's deadline, the dispatcher degrades
// the decode tier along the backend's ladder (SD -> K-Best -> MMSE-Neumann
// -> linear) —
// shedding *work* instead of frames — before the queue-expiry ZF fallback
// ever has to fire. Completed decodes feed their observed node counts and
// charged seconds back into the cost model, closing the calibration loop.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "dispatch/backend.hpp"
#include "dispatch/cost_model.hpp"
#include "serve/frame.hpp"
#include "serve/metrics.hpp"

namespace sd::obs {
class CounterRegistry;
}

namespace sd::dispatch {

enum class PlacementPolicy : std::uint8_t {
  kRoundRobin,  ///< rotate over global lanes, ignore cost
  kLeastLoaded, ///< shallowest lane queue by frame count
  kCostAware,   ///< minimize predicted completion; degrade tiers on overload
};

[[nodiscard]] std::string_view placement_policy_name(PlacementPolicy p) noexcept;

/// Parses "round-robin" / "least-loaded" / "cost-aware"; throws on others.
[[nodiscard]] PlacementPolicy parse_placement_policy(std::string_view text);

struct DispatcherOptions {
  PlacementPolicy policy = PlacementPolicy::kCostAware;
  CostModelOptions cost = {};
  /// Degrade the decode tier along the ladder when no placement meets the
  /// frame's deadline (cost-aware policy only). Off = always primary tier.
  bool degrade_on_deadline = true;
  /// Completed frames per backend before its prediction errors count toward
  /// the reported mean (the model is still cold below this).
  std::uint64_t prediction_warmup = 16;
  double histogram_max_s = 1.0;
  usize histogram_buckets = 10'000;
};

/// Per-backend view: the same ServerMetrics shape the serve layer reports,
/// restricted to frames placed on this backend, plus the dispatch-specific
/// counters.
struct BackendMetrics {
  std::string label;
  BackendKind kind = BackendKind::kCpu;
  unsigned lanes = 0;
  serve::ServerMetrics metrics;
  std::uint64_t steals = 0;
  std::uint64_t degraded_kbest = 0;
  std::uint64_t degraded_mmse = 0;
  std::uint64_t degraded_linear = 0;
  /// Fused-width histogram of this backend's wide runs (index = frames per
  /// run) plus the wide-batch former's activity counters — per backend, so a
  /// mixed pool shows which substrate actually forms wide work.
  std::uint64_t fused_runs = 0;
  std::uint64_t fused_frames = 0;
  std::vector<std::uint64_t> fused_width_counts;
  std::uint64_t former_runs = 0;
  std::uint64_t former_gathered = 0;
  std::uint64_t former_empty = 0;
};

/// Dispatcher-level counters not tied to one backend.
struct DispatchStats {
  std::uint64_t steals = 0;          ///< frames rebound between lanes
  std::uint64_t degraded_kbest = 0;  ///< placements demoted to the K-Best tier
  std::uint64_t degraded_mmse = 0;   ///< placements demoted to the MMSE tier
  std::uint64_t degraded_linear = 0; ///< placements demoted to the linear tier
  std::uint64_t predictions = 0;     ///< completed frames with a prediction
  std::uint64_t prediction_samples = 0;  ///< post-warmup samples in the mean
  double mean_rel_error = 0.0;  ///< mean |pred-actual| / max(pred, actual)
  /// Prediction error split by prep-cache outcome: a calibrated model should
  /// show the two diverging (hits are cheaper than misses).
  std::uint64_t prediction_samples_hit = 0;
  std::uint64_t prediction_samples_miss = 0;
  double mean_rel_error_hit = 0.0;
  double mean_rel_error_miss = 0.0;
  std::uint64_t cost_observations = 0;   ///< decodes fed back into the model
  std::uint64_t cost_buckets = 0;        ///< calibrated (backend, scenario) buckets
  /// Coherence-block reuse: preprocessing cache traffic and fused multi-frame
  /// decode runs, aggregated over the backend pool.
  std::uint64_t prep_hits = 0;
  std::uint64_t prep_misses = 0;
  std::uint64_t fused_runs = 0;    ///< decode_batch_with calls covering >= 2 frames
  std::uint64_t fused_frames = 0;  ///< frames decoded inside fused runs
  std::vector<std::uint64_t> fused_width_counts;  ///< index = frames per run
  /// Wide-batch former activity across the pool: pops the former widened
  /// (cross-lane claims and/or own-queue frames past batch_size), cross-lane
  /// frames gathered, and eligible pops that found nothing compatible to add
  /// (the former's idle signal).
  std::uint64_t former_runs = 0;
  std::uint64_t former_gathered = 0;
  std::uint64_t former_empty = 0;

  /// Pours the stats into the unified counter registry under "<prefix>.*",
  /// e.g. "dispatch.prediction.mean_rel_error".
  void export_counters(obs::CounterRegistry& registry,
                       std::string_view prefix = "dispatch") const;
};

class Dispatcher final : public LaneSink {
 public:
  /// Builds one Backend per config, registers each with the cost model, and
  /// starts every lane. Throws sd::invalid_argument_error on bad configs.
  Dispatcher(SystemConfig system, std::vector<BackendConfig> configs,
             DispatcherOptions options, serve::CompletionFn on_complete);

  /// Drains and joins.
  ~Dispatcher() override;

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Places one frame. Stamps frame.submit_time if unset; deadline defaults
  /// are the caller's business (DetectionServer applies its own). Blocks iff
  /// the chosen lane queue is full under kBlock. Thread-safe.
  serve::SubmitStatus submit(serve::FrameRequest frame);

  /// Closes every backend, drains all lane queues, joins all lanes.
  /// Idempotent. After drain() submits fail with kClosed.
  void drain();

  /// Aggregate metrics across the pool; `workers` holds one entry per
  /// global lane, in backend order. Thread-safe.
  [[nodiscard]] serve::ServerMetrics metrics() const;

  /// Per-backend breakdown, same order as the configs. Thread-safe.
  [[nodiscard]] std::vector<BackendMetrics> backend_metrics() const;

  [[nodiscard]] DispatchStats stats() const;

  [[nodiscard]] const DispatcherOptions& options() const noexcept {
    return opts_;
  }
  [[nodiscard]] const SystemConfig& system() const noexcept { return system_; }
  [[nodiscard]] usize backend_count() const noexcept { return backends_.size(); }
  [[nodiscard]] unsigned total_lanes() const noexcept { return total_lanes_; }

  /// The calibration state. Import before traffic to start warm; export
  /// after a run to persist. Thread-safe (the model locks internally).
  [[nodiscard]] CostModel& cost_model() noexcept { return cost_; }

  /// Cheapest predicted service time for `tier` across the backends whose
  /// ladder can actually serve it — the same filter (and cost shape) the
  /// cost-aware placement applies. Returns +infinity when no backend serves
  /// the tier, so callers treating the result as "can this tier meet a
  /// budget" never bank on an unplaceable (backend, tier) pair. Thread-safe.
  [[nodiscard]] double cheapest_prediction(const FrameFeatures& f,
                                           serve::DecodeTier tier);

  // LaneSink — invoked by backend lanes; not for external use.
  void frame_retired(const PlacedFrame& placed,
                     serve::FrameResult&& result) override;
  void frame_stolen(const PlacedFrame& placed, unsigned thief_lane) override;

 private:
  struct Placement {
    int backend = 0;
    unsigned lane = 0;
    serve::DecodeTier tier = serve::DecodeTier::kPrimary;
    double predicted_seconds = 0.0;
  };

  [[nodiscard]] Placement choose(const FrameFeatures& f, double deadline_s,
                                 std::uint64_t channel_fp,
                                 serve::DecodeTier start_tier);
  void account_evicted(const PlacedFrame& displaced);

  SystemConfig system_;
  DispatcherOptions opts_;
  serve::CompletionFn on_complete_;
  index_t mod_order_ = 0;

  std::vector<std::unique_ptr<Backend>> backends_;
  std::vector<unsigned> lane_base_;  ///< global index of backend b's lane 0
  unsigned total_lanes_ = 0;

  CostModel cost_;

  // Placement state: round-robin cursor and the per-global-lane sum of
  // predicted seconds still queued (the cost-aware policy's load signal).
  std::mutex place_mu_;
  std::uint64_t rr_next_ = 0;
  std::vector<double> pending_s_;
  /// Last channel fingerprint placed on each global lane (0 = none): the
  /// cost-aware policy's prep-cache affinity signal.
  std::vector<std::uint64_t> lane_last_fp_;

  // Metrics. Same single-lock discipline as the serve layer: counter and
  // histogram updates are noise next to a decode.
  mutable std::mutex metrics_mu_;
  std::uint64_t submitted_ = 0, completed_ = 0, expired_fallback_ = 0,
                expired_dropped_ = 0, evicted_ = 0, rejected_ = 0,
                deadline_misses_ = 0;
  std::uint64_t degraded_kbest_ = 0, degraded_mmse_ = 0, degraded_linear_ = 0;
  std::uint64_t predictions_ = 0, prediction_samples_ = 0;
  double prediction_abs_rel_err_sum_ = 0.0;
  std::uint64_t prediction_samples_hit_ = 0, prediction_samples_miss_ = 0;
  double prediction_err_sum_hit_ = 0.0, prediction_err_sum_miss_ = 0.0;
  Histogram queue_wait_h_, service_h_, e2e_h_;
  struct PerBackend {
    std::uint64_t submitted = 0, completed = 0, expired_fallback = 0,
                  expired_dropped = 0, evicted = 0, rejected = 0,
                  deadline_misses = 0, retired = 0;
    Histogram queue_wait, service, e2e;
    PerBackend(double max_s, usize buckets)
        : queue_wait(0.0, max_s, buckets),
          service(0.0, max_s, buckets),
          e2e(0.0, max_s, buckets) {}
  };
  std::vector<PerBackend> per_backend_;
  serve::Clock::time_point start_;
  double drained_wall_s_ = -1.0;
  bool drained_ = false;
};

}  // namespace sd::dispatch
