#include "code/coded_link.hpp"

#include "common/error.hpp"
#include "decode/sd_gemm.hpp"
#include "mimo/frame.hpp"

namespace sd {

namespace {

void accumulate(DecodeStats& into, const DecodeStats& from) {
  into.nodes_expanded += from.nodes_expanded;
  into.nodes_generated += from.nodes_generated;
  into.nodes_pruned += from.nodes_pruned;
  into.leaves_reached += from.leaves_reached;
  into.radius_updates += from.radius_updates;
  into.gemm_calls += from.gemm_calls;
  into.flops += from.flops;
  into.sort_ops += from.sort_ops;
  into.bytes_touched += from.bytes_touched;
  into.node_budget_hit |= from.node_budget_hit;
  into.preprocess_seconds += from.preprocess_seconds;
  into.search_seconds += from.search_seconds;
}

}  // namespace

CodedLink::CodedLink(CodedLinkConfig config)
    : config_(config),
      constellation_(&Constellation::get(config.modulation)),
      code_(),
      coded_bits_(2 * (config.info_bits + static_cast<usize>(code_.memory()))),
      bits_per_vector_(static_cast<usize>(config.num_tx) *
                       static_cast<usize>(constellation_->bits_per_symbol())),
      interleaver_(coded_bits_, config.seed ^ 0xC0DEC0DEull),
      channel_(config.num_rx, config.num_tx, config.seed),
      payload_rng_(config.seed ^ 0xFEEDFACEull) {
  SD_CHECK(config_.info_bits > 0, "payload must be non-empty");
  padded_bits_ =
      (coded_bits_ + bits_per_vector_ - 1) / bits_per_vector_ * bits_per_vector_;
}

PacketResult CodedLink::run_packet(double snr_db) {
  PacketResult result;
  const double sigma2 = snr_db_to_sigma2(snr_db, config_.num_tx);
  const int bits_per_symbol = constellation_->bits_per_symbol();

  // --- Transmitter: payload -> codeword -> interleave -> pad -> map.
  std::vector<std::uint8_t> info(config_.info_bits);
  for (std::uint8_t& b : info) {
    b = static_cast<std::uint8_t>(payload_rng_.next_index(2));
  }
  const std::vector<std::uint8_t> coded = code_.encode(info);
  SD_ASSERT(coded.size() == coded_bits_);
  std::vector<std::uint8_t> stream = interleaver_.interleave(coded);
  stream.resize(padded_bits_, 0);  // pad with known zeros

  // --- Channel + detection, one MIMO vector per bits_per_vector chunk.
  SdGemmDetector hard_detector(*constellation_, SdOptions{});
  ListSdOptions soft_opts;
  soft_opts.list_size = config_.list_size;
  ListSphereDecoder soft_detector(*constellation_, soft_opts);

  std::vector<double> llr_stream(padded_bits_, 0.0);
  std::vector<std::uint8_t> bit_buf(static_cast<usize>(bits_per_symbol));
  for (usize offset = 0; offset < padded_bits_; offset += bits_per_vector_) {
    ++result.vectors_used;
    // Map this chunk's bits onto the M transmit symbols.
    std::vector<index_t> tx_indices(static_cast<usize>(config_.num_tx));
    for (index_t ant = 0; ant < config_.num_tx; ++ant) {
      for (int b = 0; b < bits_per_symbol; ++b) {
        bit_buf[static_cast<usize>(b)] =
            stream[offset + static_cast<usize>(ant) * bits_per_symbol +
                   static_cast<usize>(b)];
      }
      tx_indices[static_cast<usize>(ant)] =
          constellation_->bits_to_index(bit_buf);
    }
    const TxVector tx = modulate(*constellation_, tx_indices);
    const CMat h = channel_.draw_channel();
    const CVec y = channel_.transmit(h, tx.symbols, sigma2);

    if (config_.soft_detection) {
      const SoftDecodeResult soft = soft_detector.decode_soft(h, y, sigma2);
      accumulate(result.detection, soft.hard.stats);
      for (usize b = 0; b < bits_per_vector_; ++b) {
        llr_stream[offset + b] = soft.llrs[b];
      }
      for (index_t ant = 0; ant < config_.num_tx; ++ant) {
        if (soft.hard.indices[static_cast<usize>(ant)] !=
            tx_indices[static_cast<usize>(ant)]) {
          result.raw_bit_errors += static_cast<usize>(
              constellation_->bit_errors(tx_indices[static_cast<usize>(ant)],
                                         soft.hard.indices[static_cast<usize>(ant)]));
        }
      }
    } else {
      const DecodeResult hard = hard_detector.decode(h, y, sigma2);
      accumulate(result.detection, hard.stats);
      for (index_t ant = 0; ant < config_.num_tx; ++ant) {
        constellation_->index_to_bits(hard.indices[static_cast<usize>(ant)],
                                      bit_buf);
        for (int b = 0; b < bits_per_symbol; ++b) {
          // Hard decisions become unit-magnitude LLRs.
          llr_stream[offset + static_cast<usize>(ant) * bits_per_symbol +
                     static_cast<usize>(b)] =
              bit_buf[static_cast<usize>(b)] ? -1.0 : 1.0;
        }
        result.raw_bit_errors += static_cast<usize>(constellation_->bit_errors(
            tx_indices[static_cast<usize>(ant)],
            hard.indices[static_cast<usize>(ant)]));
      }
    }
  }

  // --- Receiver: drop padding, deinterleave LLRs, Viterbi, compare.
  llr_stream.resize(coded_bits_);
  const std::vector<double> deinterleaved =
      interleaver_.deinterleave(std::span<const double>(llr_stream));
  const std::vector<std::uint8_t> decoded = code_.decode_llr(deinterleaved);
  SD_ASSERT(decoded.size() == info.size());
  for (usize i = 0; i < info.size(); ++i) {
    if (decoded[i] != info[i]) ++result.info_bit_errors;
  }
  result.packet_ok = result.info_bit_errors == 0;
  return result;
}

}  // namespace sd
