#include "code/convolutional.hpp"

#include <bit>
#include <limits>

#include "common/error.hpp"
#include "common/types.hpp"

namespace sd {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

ConvolutionalCode::ConvolutionalCode() : memory_(6), g0_(0133), g1_(0171) {}

std::pair<std::uint8_t, std::uint8_t> ConvolutionalCode::output_bits(
    int state, int input) const noexcept {
  // Register layout: bit 6 = current input, bits 5..0 = previous inputs
  // (most recent in bit 5).
  const std::uint32_t reg =
      (static_cast<std::uint32_t>(input) << memory_) |
      static_cast<std::uint32_t>(state);
  const auto c0 = static_cast<std::uint8_t>(std::popcount(reg & g0_) & 1);
  const auto c1 = static_cast<std::uint8_t>(std::popcount(reg & g1_) & 1);
  return {c0, c1};
}

std::vector<std::uint8_t> ConvolutionalCode::encode(
    std::span<const std::uint8_t> info) const {
  std::vector<std::uint8_t> coded;
  coded.reserve(2 * (info.size() + static_cast<usize>(memory_)));
  int state = 0;
  auto push = [&](int input) {
    const auto [c0, c1] = output_bits(state, input);
    coded.push_back(c0);
    coded.push_back(c1);
    state = static_cast<int>(
        ((static_cast<std::uint32_t>(input) << memory_) |
         static_cast<std::uint32_t>(state)) >> 1);
  };
  for (std::uint8_t bit : info) {
    SD_CHECK(bit <= 1, "info bits must be 0/1");
    push(bit);
  }
  for (int t = 0; t < memory_; ++t) push(0);  // terminate the trellis
  return coded;
}

std::vector<std::uint8_t> ConvolutionalCode::decode_llr(
    std::span<const double> llrs) const {
  SD_CHECK(llrs.size() % 2 == 0, "LLR stream must pair up with coded bits");
  const usize steps = llrs.size() / 2;
  SD_CHECK(steps > static_cast<usize>(memory_),
           "codeword shorter than the tail");
  const int states = num_states();

  // Forward pass with survivor storage (O(steps * states) memory — fine for
  // the packet sizes the experiments use).
  std::vector<double> cost(static_cast<usize>(states), kInf);
  std::vector<double> next_cost(static_cast<usize>(states), kInf);
  std::vector<std::uint8_t> survivors(steps * static_cast<usize>(states));
  cost[0] = 0.0;

  for (usize t = 0; t < steps; ++t) {
    std::fill(next_cost.begin(), next_cost.end(), kInf);
    const double l0 = llrs[2 * t];
    const double l1 = llrs[2 * t + 1];
    const bool tail = t >= steps - static_cast<usize>(memory_);
    for (int state = 0; state < states; ++state) {
      if (cost[static_cast<usize>(state)] == kInf) continue;
      const int max_input = tail ? 0 : 1;  // tail forces zeros
      for (int input = 0; input <= max_input; ++input) {
        const auto [c0, c1] = output_bits(state, input);
        // LLR convention: positive favours bit 0, so sending a 1 costs +l.
        const double branch = (c0 ? l0 : -l0) + (c1 ? l1 : -l1);
        const int next_state = static_cast<int>(
            ((static_cast<std::uint32_t>(input) << memory_) |
             static_cast<std::uint32_t>(state)) >> 1);
        const double candidate = cost[static_cast<usize>(state)] + branch;
        if (candidate < next_cost[static_cast<usize>(next_state)]) {
          next_cost[static_cast<usize>(next_state)] = candidate;
          // Survivor stores the *predecessor*'s low bit discarded by the
          // shift plus the input; we can reconstruct the predecessor as
          // (next_state << 1 | dropped) & mask, and the input as the MSB.
          survivors[t * static_cast<usize>(states) +
                    static_cast<usize>(next_state)] =
              static_cast<std::uint8_t>((input << 1) | (state & 1));
        }
      }
    }
    cost.swap(next_cost);
  }

  // Traceback from the zero state (terminated trellis).
  SD_CHECK(cost[0] != kInf, "trellis did not terminate — corrupted input");
  std::vector<std::uint8_t> decoded(steps);
  int state = 0;
  for (usize t = steps; t-- > 0;) {
    const std::uint8_t survivor =
        survivors[t * static_cast<usize>(states) + static_cast<usize>(state)];
    const int input = (survivor >> 1) & 1;
    const int dropped = survivor & 1;
    decoded[t] = static_cast<std::uint8_t>(input);
    // Invert the state update: predecessor = (state << 1 | dropped) without
    // the input bit that sits at the top of the register.
    state = static_cast<int>(
        ((static_cast<std::uint32_t>(state) << 1) |
         static_cast<std::uint32_t>(dropped)) &
        ((1u << memory_) - 1));
  }
  decoded.resize(steps - static_cast<usize>(memory_));  // strip the tail
  return decoded;
}

std::vector<std::uint8_t> ConvolutionalCode::decode_hard(
    std::span<const std::uint8_t> coded) const {
  std::vector<double> llrs(coded.size());
  for (usize i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] ? -1.0 : 1.0;
  }
  return decode_llr(llrs);
}

}  // namespace sd
