// Iterative (turbo) detection and decoding — the receiver architecture of
// the paper's ref. [11] built from this repository's pieces:
//
//        +---------------------+   extrinsic (deint.)   +-----------+
//   y -> | list sphere decoder | ---------------------> | max-log   |
//        | (LLRs from stored   | <--------------------- | BCJR SISO |
//        |  candidate lists)   |   priors (interleaved) +-----------+
//        +---------------------+
//
// The tree search runs ONCE per received vector; subsequent iterations
// only re-score the stored candidate lists under the decoder's feedback —
// which is what makes iterative LSD receivers practical.
#pragma once

#include <cstdint>

#include "code/bcjr.hpp"
#include "code/convolutional.hpp"
#include "code/interleaver.hpp"
#include "decode/soft_output.hpp"
#include "mimo/channel.hpp"

namespace sd {

struct TurboConfig {
  index_t num_tx = 4;
  index_t num_rx = 4;
  Modulation modulation = Modulation::kQam4;
  usize info_bits = 200;
  int iterations = 3;     ///< detection/decoding exchanges (1 = non-iterative)
  usize list_size = 64;   ///< candidate list depth per vector
  std::uint64_t seed = 1;
};

struct TurboPacketResult {
  bool packet_ok = false;
  usize info_bit_errors = 0;
  /// Info-bit errors after each iteration (size = iterations), so the
  /// per-iteration gain is visible.
  std::vector<usize> errors_per_iteration;
  usize vectors_used = 0;
};

class TurboReceiver {
 public:
  explicit TurboReceiver(TurboConfig config);

  [[nodiscard]] const TurboConfig& config() const noexcept { return config_; }

  /// Transmits one packet at the given SNR and decodes it iteratively.
  [[nodiscard]] TurboPacketResult run_packet(double snr_db);

 private:
  TurboConfig config_;
  const Constellation* constellation_;
  ConvolutionalCode code_;
  usize coded_bits_ = 0;
  usize padded_bits_ = 0;
  usize bits_per_vector_ = 0;
  Interleaver interleaver_;
  ChannelModel channel_;
  GaussianSource payload_rng_;
};

}  // namespace sd
