// Max-log BCJR (SISO) decoding of the convolutional code.
//
// The Viterbi decoder returns hard info bits; an *iterative* receiver —
// "iterative decoding for MIMO channels via modified sphere decoding"
// (Vikalo/Hassibi/Kailath, the paper's ref. [11]) — needs soft-in/soft-out
// decoding: a-posteriori LLRs for the info bits plus *extrinsic* LLRs for
// the coded bits, which are fed back to the detector as priors. This is the
// max-log approximation (forward/backward Viterbi metrics), numerically
// robust and the standard hardware-friendly choice.
#pragma once

#include <span>
#include <vector>

#include "code/convolutional.hpp"

namespace sd {

struct BcjrResult {
  /// A-posteriori LLRs of the info bits (positive = bit 0), tail stripped.
  std::vector<double> info_llrs;
  /// Extrinsic LLRs of the coded bits: a-posteriori minus the channel
  /// input, i.e. the new information the code structure contributed.
  std::vector<double> coded_extrinsic;
  /// Hard decisions on info_llrs.
  std::vector<std::uint8_t> info_bits;
};

class BcjrDecoder {
 public:
  explicit BcjrDecoder(const ConvolutionalCode& code) : code_(&code) {}

  /// Decodes a terminated codeword from per-coded-bit channel LLRs, with
  /// optional a-priori LLRs on the info bits (empty = uniform prior).
  [[nodiscard]] BcjrResult decode(std::span<const double> coded_llrs,
                                  std::span<const double> info_priors = {}) const;

 private:
  const ConvolutionalCode* code_;
};

}  // namespace sd
