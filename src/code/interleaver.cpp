#include "code/interleaver.hpp"

#include "common/error.hpp"
#include "common/random.hpp"

namespace sd {

Interleaver::Interleaver(usize length, std::uint64_t seed)
    : forward_(length), inverse_(length) {
  SD_CHECK(length > 0, "interleaver length must be positive");
  for (usize i = 0; i < length; ++i) {
    forward_[i] = static_cast<std::uint32_t>(i);
  }
  // Fisher-Yates with the library PRNG so the permutation is reproducible.
  GaussianSource rng(seed);
  for (usize i = length - 1; i > 0; --i) {
    const usize j = rng.next_index(static_cast<std::uint32_t>(i + 1));
    std::swap(forward_[i], forward_[j]);
  }
  for (usize i = 0; i < length; ++i) {
    inverse_[forward_[i]] = static_cast<std::uint32_t>(i);
  }
}

std::vector<std::uint8_t> Interleaver::interleave(
    std::span<const std::uint8_t> in) const {
  SD_CHECK(in.size() == forward_.size(), "interleaver length mismatch");
  std::vector<std::uint8_t> out(in.size());
  for (usize i = 0; i < in.size(); ++i) {
    out[i] = in[forward_[i]];
  }
  return out;
}

std::vector<double> Interleaver::interleave(std::span<const double> in) const {
  SD_CHECK(in.size() == forward_.size(), "interleaver length mismatch");
  std::vector<double> out(in.size());
  for (usize i = 0; i < in.size(); ++i) {
    out[i] = in[forward_[i]];
  }
  return out;
}

std::vector<std::uint8_t> Interleaver::deinterleave(
    std::span<const std::uint8_t> in) const {
  SD_CHECK(in.size() == inverse_.size(), "interleaver length mismatch");
  std::vector<std::uint8_t> out(in.size());
  for (usize i = 0; i < in.size(); ++i) {
    out[i] = in[inverse_[i]];
  }
  return out;
}

std::vector<double> Interleaver::deinterleave(std::span<const double> in) const {
  SD_CHECK(in.size() == inverse_.size(), "interleaver length mismatch");
  std::vector<double> out(in.size());
  for (usize i = 0; i < in.size(); ++i) {
    out[i] = in[inverse_[i]];
  }
  return out;
}

}  // namespace sd
