#include "code/bcjr.hpp"

#include <limits>

#include "common/error.hpp"
#include "common/types.hpp"

namespace sd {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Half-scale bit cost so that output LLRs carry the same scale as inputs:
/// cost(b=0) = -L/2, cost(b=1) = +L/2 (L positive favours bit 0).
double bit_cost(int bit, double llr) noexcept {
  return bit ? llr * 0.5 : -llr * 0.5;
}
}  // namespace

BcjrResult BcjrDecoder::decode(std::span<const double> coded_llrs,
                               std::span<const double> info_priors) const {
  SD_CHECK(coded_llrs.size() % 2 == 0, "LLR stream must pair up");
  const usize steps = coded_llrs.size() / 2;
  const int memory = code_->memory();
  SD_CHECK(steps > static_cast<usize>(memory), "codeword shorter than tail");
  const usize info_len = steps - static_cast<usize>(memory);
  SD_CHECK(info_priors.empty() || info_priors.size() == info_len,
           "prior length must match the info length");
  const int states = code_->num_states();

  auto branch_cost = [&](usize t, int state, int input) {
    const auto e = code_->edge(state, input);
    double cost = bit_cost(e.c0, coded_llrs[2 * t]) +
                  bit_cost(e.c1, coded_llrs[2 * t + 1]);
    if (!info_priors.empty() && t < info_len) {
      cost += bit_cost(input, info_priors[t]);
    }
    return cost;
  };
  auto max_input = [&](usize t) { return t < info_len ? 1 : 0; };

  // Forward (alpha) and backward (beta) min-cost passes.
  std::vector<std::vector<double>> alpha(
      steps + 1, std::vector<double>(static_cast<usize>(states), kInf));
  alpha[0][0] = 0.0;
  for (usize t = 0; t < steps; ++t) {
    for (int s = 0; s < states; ++s) {
      if (alpha[t][static_cast<usize>(s)] == kInf) continue;
      for (int input = 0; input <= max_input(t); ++input) {
        const auto e = code_->edge(s, input);
        const double cand =
            alpha[t][static_cast<usize>(s)] + branch_cost(t, s, input);
        double& slot = alpha[t + 1][static_cast<usize>(e.next_state)];
        if (cand < slot) slot = cand;
      }
    }
  }
  std::vector<std::vector<double>> beta(
      steps + 1, std::vector<double>(static_cast<usize>(states), kInf));
  beta[steps][0] = 0.0;  // terminated trellis
  for (usize t = steps; t-- > 0;) {
    for (int s = 0; s < states; ++s) {
      for (int input = 0; input <= max_input(t); ++input) {
        const auto e = code_->edge(s, input);
        const double down = beta[t + 1][static_cast<usize>(e.next_state)];
        if (down == kInf) continue;
        const double cand = down + branch_cost(t, s, input);
        double& slot = beta[t][static_cast<usize>(s)];
        if (cand < slot) slot = cand;
      }
    }
  }
  SD_CHECK(alpha[steps][0] != kInf, "trellis does not terminate");

  BcjrResult out;
  out.info_llrs.resize(info_len);
  out.coded_extrinsic.assign(coded_llrs.size(), 0.0);
  out.info_bits.resize(info_len);

  for (usize t = 0; t < steps; ++t) {
    // Minimum path cost conditioned on each hypothesis of this step's bits.
    double best_input[2] = {kInf, kInf};
    double best_c0[2] = {kInf, kInf};
    double best_c1[2] = {kInf, kInf};
    for (int s = 0; s < states; ++s) {
      if (alpha[t][static_cast<usize>(s)] == kInf) continue;
      for (int input = 0; input <= max_input(t); ++input) {
        const auto e = code_->edge(s, input);
        const double down = beta[t + 1][static_cast<usize>(e.next_state)];
        if (down == kInf) continue;
        const double total = alpha[t][static_cast<usize>(s)] +
                             branch_cost(t, s, input) + down;
        if (total < best_input[input]) best_input[input] = total;
        if (total < best_c0[e.c0]) best_c0[e.c0] = total;
        if (total < best_c1[e.c1]) best_c1[e.c1] = total;
      }
    }
    if (t < info_len) {
      // Positive = bit 0 more likely (same convention as the inputs).
      const double llr =
          (best_input[1] == kInf ? 50.0
                                 : best_input[1]) -
          (best_input[0] == kInf ? 50.0 : best_input[0]);
      out.info_llrs[t] = llr;
      out.info_bits[t] = llr < 0 ? 1 : 0;
    }
    auto extrinsic = [](double b1, double b0, double channel) {
      const double app = (b1 == kInf ? 50.0 : b1) - (b0 == kInf ? 50.0 : b0);
      return app - channel;
    };
    out.coded_extrinsic[2 * t] =
        extrinsic(best_c0[1], best_c0[0], coded_llrs[2 * t]);
    out.coded_extrinsic[2 * t + 1] =
        extrinsic(best_c1[1], best_c1[0], coded_llrs[2 * t + 1]);
  }
  return out;
}

}  // namespace sd
