// Convolutional coding substrate (the outer code of 802.11-class links the
// paper's intro targets): the standard K=7, rate-1/2 code with generators
// (133, 171) octal, plus a Viterbi decoder operating on bit LLRs — hard
// decisions are the special case of +/-1 LLRs. Used by the coded-BER
// experiments to show how detector soft output translates into link gains.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sd {

class ConvolutionalCode {
 public:
  /// K=7 (memory 6), rate 1/2, generators 0o133 and 0o171.
  ConvolutionalCode();

  [[nodiscard]] int memory() const noexcept { return memory_; }
  [[nodiscard]] int num_states() const noexcept { return 1 << memory_; }

  /// Encodes `info` bits followed by `memory()` zero tail bits (trellis
  /// termination). Output length = 2 * (info.size() + memory()).
  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::span<const std::uint8_t> info) const;

  /// Viterbi decode from per-coded-bit LLRs (positive = bit 0 more likely).
  /// `llrs` length must be even and correspond to a terminated codeword;
  /// returns the decoded info bits (tail stripped).
  [[nodiscard]] std::vector<std::uint8_t> decode_llr(
      std::span<const double> llrs) const;

  /// Hard-decision Viterbi: wraps each bit as an LLR of magnitude 1.
  [[nodiscard]] std::vector<std::uint8_t> decode_hard(
      std::span<const std::uint8_t> coded) const;

  /// One trellis transition, exposed for SISO (BCJR) decoding.
  struct TrellisEdge {
    std::uint8_t c0;
    std::uint8_t c1;
    int next_state;
  };
  [[nodiscard]] TrellisEdge edge(int state, int input) const noexcept {
    const auto [c0, c1] = output_bits(state, input);
    const int next = static_cast<int>(
        ((static_cast<std::uint32_t>(input) << memory_) |
         static_cast<std::uint32_t>(state)) >> 1);
    return {c0, c1, next};
  }

 private:
  /// Coded bit pair produced when `input` enters state `state`.
  [[nodiscard]] std::pair<std::uint8_t, std::uint8_t> output_bits(
      int state, int input) const noexcept;

  int memory_ = 6;
  std::uint32_t g0_ = 0;
  std::uint32_t g1_ = 0;
};

}  // namespace sd
