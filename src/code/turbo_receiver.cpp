#include "code/turbo_receiver.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "mimo/frame.hpp"

namespace sd {

TurboReceiver::TurboReceiver(TurboConfig config)
    : config_(config),
      constellation_(&Constellation::get(config.modulation)),
      code_(),
      coded_bits_(2 * (config.info_bits + static_cast<usize>(code_.memory()))),
      bits_per_vector_(static_cast<usize>(config.num_tx) *
                       static_cast<usize>(constellation_->bits_per_symbol())),
      interleaver_(coded_bits_, config.seed ^ 0x70126B0ull),
      channel_(config.num_rx, config.num_tx, config.seed),
      payload_rng_(config.seed ^ 0xBADC0FFEull) {
  SD_CHECK(config_.info_bits > 0, "payload must be non-empty");
  SD_CHECK(config_.iterations >= 1, "at least one iteration");
  padded_bits_ =
      (coded_bits_ + bits_per_vector_ - 1) / bits_per_vector_ * bits_per_vector_;
}

TurboPacketResult TurboReceiver::run_packet(double snr_db) {
  TurboPacketResult result;
  const double sigma2 = snr_db_to_sigma2(snr_db, config_.num_tx);
  const int bits_per_symbol = constellation_->bits_per_symbol();

  // --- Transmitter (same chain as CodedLink).
  std::vector<std::uint8_t> info(config_.info_bits);
  for (std::uint8_t& b : info) {
    b = static_cast<std::uint8_t>(payload_rng_.next_index(2));
  }
  const std::vector<std::uint8_t> coded = code_.encode(info);
  std::vector<std::uint8_t> stream = interleaver_.interleave(coded);
  stream.resize(padded_bits_, 0);

  // --- One tree search per vector; candidate lists are retained.
  ListSdOptions lsd_opts;
  lsd_opts.list_size = config_.list_size;
  std::vector<ListSphereDecoder> detectors;  // one per vector, owns its list
  std::vector<std::uint8_t> bit_buf(static_cast<usize>(bits_per_symbol));
  const usize vectors = padded_bits_ / bits_per_vector_;
  result.vectors_used = vectors;
  detectors.reserve(vectors);

  for (usize vi = 0; vi < vectors; ++vi) {
    std::vector<index_t> tx_indices(static_cast<usize>(config_.num_tx));
    for (index_t ant = 0; ant < config_.num_tx; ++ant) {
      for (int b = 0; b < bits_per_symbol; ++b) {
        bit_buf[static_cast<usize>(b)] =
            stream[vi * bits_per_vector_ +
                   static_cast<usize>(ant) * bits_per_symbol +
                   static_cast<usize>(b)];
      }
      tx_indices[static_cast<usize>(ant)] =
          constellation_->bits_to_index(bit_buf);
    }
    const TxVector tx = modulate(*constellation_, tx_indices);
    const CMat h = channel_.draw_channel();
    const CVec y = channel_.transmit(h, tx.symbols, sigma2);
    detectors.emplace_back(*constellation_, lsd_opts);
    (void)detectors.back().decode_soft(h, y, sigma2);
  }

  // --- Iterative exchange.
  std::vector<double> priors(padded_bits_, 0.0);  // interleaved domain
  BcjrDecoder bcjr(code_);
  std::vector<std::uint8_t> decoded;
  for (int it = 0; it < config_.iterations; ++it) {
    // Detector pass: re-score candidate lists under the current priors.
    std::vector<double> detector_llrs(padded_bits_, 0.0);
    for (usize vi = 0; vi < vectors; ++vi) {
      const std::span<const double> vector_priors(
          priors.data() + vi * bits_per_vector_, bits_per_vector_);
      const std::vector<double> llrs =
          detectors[vi].llrs_from_list(vector_priors, sigma2);
      for (usize b = 0; b < bits_per_vector_; ++b) {
        detector_llrs[vi * bits_per_vector_ + b] = llrs[b];
      }
    }
    // Detector extrinsic = a-posteriori minus what the decoder told us.
    std::vector<double> extrinsic(coded_bits_);
    for (usize b = 0; b < coded_bits_; ++b) {
      extrinsic[b] = detector_llrs[b] - priors[b];
    }
    const std::vector<double> decoder_in =
        interleaver_.deinterleave(std::span<const double>(extrinsic));

    const BcjrResult dec = bcjr.decode(decoder_in);
    decoded = dec.info_bits;

    usize iter_errors = 0;
    for (usize i = 0; i < info.size(); ++i) {
      if (decoded[i] != info[i]) ++iter_errors;
    }
    result.errors_per_iteration.push_back(iter_errors);

    if (it + 1 < config_.iterations) {
      // Feed the decoder's coded-bit extrinsic back as detector priors
      // (re-interleaved into the channel's bit order; padding stays at 0).
      // Extrinsic magnitudes are clamped and damped — unbounded or
      // full-strength feedback lets one confidently-wrong decoder decision
      // swamp the detector's evidence and makes the loop oscillate at low
      // SNR (the classic turbo ping-pong; 0.7 is a standard damping value
      // for max-log extrinsics).
      constexpr double kFeedbackClamp = 12.0;
      constexpr double kDamping = 0.7;
      const std::vector<double> fed = interleaver_.interleave(
          std::span<const double>(dec.coded_extrinsic));
      std::fill(priors.begin(), priors.end(), 0.0);
      for (usize j = 0; j < coded_bits_; ++j) {
        priors[j] =
            kDamping * std::clamp(fed[j], -kFeedbackClamp, kFeedbackClamp);
      }
    }
  }

  result.info_bit_errors = result.errors_per_iteration.back();
  result.packet_ok = result.info_bit_errors == 0;
  return result;
}

}  // namespace sd
