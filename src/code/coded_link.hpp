// End-to-end coded MIMO link: convolutional encoder -> interleaver -> QAM
// mapper -> MIMO channel -> detector (hard SD or soft list-SD) -> LLR
// deinterleaver -> Viterbi. The coded-BER bench uses this pipeline to show
// what the detector's quality buys at the packet level — the metric an
// operator actually cares about.
#pragma once

#include <cstdint>

#include "code/convolutional.hpp"
#include "code/interleaver.hpp"
#include "decode/soft_output.hpp"
#include "mimo/channel.hpp"
#include "mimo/scenario.hpp"

namespace sd {

struct CodedLinkConfig {
  index_t num_tx = 4;
  index_t num_rx = 4;
  Modulation modulation = Modulation::kQam4;
  usize info_bits = 200;      ///< payload per packet (pre-coding)
  bool soft_detection = true; ///< list-SD LLRs vs hard SD decisions
  usize list_size = 32;       ///< list-SD candidate count
  std::uint64_t seed = 1;
};

/// Outcome of one packet transmission.
struct PacketResult {
  bool packet_ok = false;        ///< all info bits recovered
  usize info_bit_errors = 0;     ///< post-Viterbi errors
  usize raw_bit_errors = 0;      ///< pre-Viterbi (detector hard output) errors
  usize vectors_used = 0;        ///< MIMO channel uses
  DecodeStats detection;         ///< aggregated detector work
};

class CodedLink {
 public:
  explicit CodedLink(CodedLinkConfig config);

  [[nodiscard]] const CodedLinkConfig& config() const noexcept {
    return config_;
  }

  /// Transmits one packet at the given SNR and decodes it.
  [[nodiscard]] PacketResult run_packet(double snr_db);

 private:
  CodedLinkConfig config_;
  const Constellation* constellation_;
  ConvolutionalCode code_;
  usize coded_bits_ = 0;
  usize padded_bits_ = 0;
  usize bits_per_vector_ = 0;
  Interleaver interleaver_;
  ChannelModel channel_;
  GaussianSource payload_rng_;
};

}  // namespace sd
