// Bit interleaving between the convolutional code and the QAM mapper
// (bit-interleaved coded modulation). Breaks up the error bursts a deep
// fade on one MIMO stream produces, so the Viterbi decoder sees scattered
// errors it can correct.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace sd {

/// Deterministic pseudo-random interleaver over a fixed block length.
class Interleaver {
 public:
  /// Permutation of `length` positions drawn from `seed`.
  Interleaver(usize length, std::uint64_t seed);

  [[nodiscard]] usize length() const noexcept { return forward_.size(); }

  /// out[i] = in[pi(i)] — scatter the coded stream. The double overload
  /// lets iterative receivers scatter LLR streams the same way.
  [[nodiscard]] std::vector<std::uint8_t> interleave(
      std::span<const std::uint8_t> in) const;
  [[nodiscard]] std::vector<double> interleave(
      std::span<const double> in) const;

  /// Inverse permutation (restores coded order). Works for any element type
  /// carried through the channel, so LLRs can be deinterleaved too.
  [[nodiscard]] std::vector<std::uint8_t> deinterleave(
      std::span<const std::uint8_t> in) const;
  [[nodiscard]] std::vector<double> deinterleave(
      std::span<const double> in) const;

 private:
  std::vector<std::uint32_t> forward_;  ///< pi
  std::vector<std::uint32_t> inverse_;  ///< pi^-1
};

}  // namespace sd
