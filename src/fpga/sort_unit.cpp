#include "fpga/sort_unit.hpp"

#include <bit>

namespace sd {

std::uint64_t SortUnit::stages(usize n) noexcept {
  if (n < 2) return 0;
  const auto s = static_cast<std::uint64_t>(std::bit_width(n - 1));
  return s * (s + 1) / 2;
}

}  // namespace sd
