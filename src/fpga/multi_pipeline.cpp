#include "fpga/multi_pipeline.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sd {

MultiPipelineFpga::MultiPipelineFpga(const FpgaConfig& config,
                                     int num_pipelines)
    : config_(config) {
  SD_CHECK(num_pipelines >= 1 && num_pipelines <= 16,
           "pipeline count must be in [1, 16]");
  lanes_.reserve(static_cast<usize>(num_pipelines));
  for (int i = 0; i < num_pipelines; ++i) {
    lanes_.emplace_back(config);
  }
}

bool MultiPipelineFpga::fits(const FpgaConfig& config, int num_pipelines) {
  const ResourceEstimate one = estimate_resources(config);
  const double p = num_pipelines;
  return one.lut_frac() * p <= 1.0 && one.ff_frac() * p <= 1.0 &&
         one.dsp_frac() * p <= 1.0 && one.bram_frac() * p <= 1.0 &&
         one.uram_frac() * p <= 1.0;
}

MultiPipelineReport MultiPipelineFpga::decode_batch(
    const std::vector<Preprocessed>& batch, const Constellation& constellation,
    double sigma2, const SdOptions& search_opts) {
  SD_CHECK(!batch.empty(), "batch must not be empty");
  MultiPipelineReport report;
  report.pipelines = pipelines();
  report.vectors = batch.size();
  report.fits_on_device = fits(config_, pipelines());
  report.lane_busy_seconds.assign(lanes_.size(), 0.0);

  // Earliest-free-lane dispatch: lane_free[i] is when lane i next idles.
  std::vector<double> lane_free(lanes_.size(), 0.0);
  double latency_acc = 0.0;
  for (const Preprocessed& pre : batch) {
    const usize lane = static_cast<usize>(
        std::min_element(lane_free.begin(), lane_free.end()) -
        lane_free.begin());
    const FpgaRunReport r =
        lanes_[lane].run(pre, constellation, sigma2, search_opts);
    lane_free[lane] += r.total_seconds;
    report.lane_busy_seconds[lane] += r.total_seconds;
    latency_acc += r.total_seconds;
  }
  report.makespan_seconds =
      *std::max_element(lane_free.begin(), lane_free.end());
  report.throughput_vps =
      static_cast<double>(batch.size()) / report.makespan_seconds;
  report.mean_latency_seconds = latency_acc / static_cast<double>(batch.size());
  return report;
}

}  // namespace sd
