// Systolic-array GEMM engine model (paper §III-C1).
//
// The paper extracts the GEMM engine from the Xilinx Vitis BLAS library: a
// two-dimensional mesh of floating-point MAC units (DSP slices) fed from
// single-cycle BRAM. This module is both a *functional* GEMM (bit-exact
// complex arithmetic, optionally rounded to fp16 between operations) and a
// *cycle* model of the mesh:
//
//   tiles  = ceil(m / mesh_rows) * ceil(n / mesh_cols)
//   cycles = tiles * (k + fill_latency)
//
// i.e. each output tile streams the K dimension at II=1 after a pipeline
// fill. A 1x1 mesh degenerates to the baseline design's sequential MAC chain
// (one MAC per cycle: m*n*k cycles plus fill).
#pragma once

#include <cstdint>

#include "fpga/hw_config.hpp"
#include "linalg/matrix.hpp"

namespace sd {

class SystolicGemmEngine {
 public:
  /// `mac_ii` only affects the degenerate 1x1 mesh (the baseline design's
  /// sequential MAC chain, which stalls for the accumulator latency).
  SystolicGemmEngine(index_t mesh_rows, index_t mesh_cols,
                     index_t fill_latency,
                     Precision precision = Precision::kFp32,
                     index_t mac_ii = 1);

  /// Cycle cost of an m x n x k GEMM on this mesh (no side effects).
  [[nodiscard]] std::uint64_t cycles_for(index_t m, index_t n,
                                         index_t k) const noexcept;

  /// Functional C = A * B with cycle accounting. In fp16 mode every product
  /// and accumulation is rounded through IEEE half precision, which is what
  /// a half-precision DSP datapath would produce.
  std::uint64_t run(const CMat& a, const CMat& b, CMat& c);

  [[nodiscard]] std::uint64_t total_cycles() const noexcept { return cycles_; }
  [[nodiscard]] std::uint64_t total_macs() const noexcept { return macs_; }
  [[nodiscard]] std::uint64_t total_calls() const noexcept { return calls_; }

  [[nodiscard]] index_t mesh_rows() const noexcept { return rows_; }
  [[nodiscard]] index_t mesh_cols() const noexcept { return cols_; }
  [[nodiscard]] index_t mac_units() const noexcept { return rows_ * cols_; }

  void reset_counters() noexcept {
    cycles_ = 0;
    macs_ = 0;
    calls_ = 0;
  }

 private:
  index_t rows_;
  index_t cols_;
  index_t fill_;
  Precision precision_;
  index_t mac_ii_;
  std::uint64_t cycles_ = 0;
  std::uint64_t macs_ = 0;
  std::uint64_t calls_ = 0;
};

}  // namespace sd
