// IEEE 754 binary16 ("half") emulation for the paper's §V future-work
// precision study. Values are stored/rounded through the 16-bit format;
// arithmetic is performed in float and re-rounded after every operation,
// which matches an FPGA datapath built from half-precision MAC primitives
// (round-to-nearest-even on each result).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace sd {

/// Converts a float to the nearest IEEE binary16 bit pattern
/// (round-to-nearest-even; overflow saturates to +/-inf; subnormals kept).
[[nodiscard]] std::uint16_t float_to_half_bits(float value) noexcept;

/// Converts an IEEE binary16 bit pattern back to float (exact).
[[nodiscard]] float half_bits_to_float(std::uint16_t bits) noexcept;

/// Rounds a float through half precision.
[[nodiscard]] inline float round_to_half(float value) noexcept {
  return half_bits_to_float(float_to_half_bits(value));
}

/// Rounds both components of a complex value through half precision.
[[nodiscard]] inline cplx round_to_half(cplx value) noexcept {
  return {round_to_half(value.real()), round_to_half(value.imag())};
}

/// Half-precision complex multiply-accumulate: acc + a*b with every
/// intermediate real operation rounded to fp16.
[[nodiscard]] cplx half_cmadd(cplx acc, cplx a, cplx b) noexcept;

}  // namespace sd
