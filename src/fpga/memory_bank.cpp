#include "fpga/memory_bank.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sd {

namespace {
constexpr usize kWordBytes = 8;  // one complex<float> word
}

MemoryBank::MemoryBank(std::string name, usize capacity_bytes, index_t latency,
                       index_t words_per_cycle)
    : name_(std::move(name)), capacity_(capacity_bytes), latency_(latency),
      words_per_cycle_(words_per_cycle) {
  SD_CHECK(latency >= 0 && words_per_cycle >= 1, "invalid memory timing");
}

std::uint64_t MemoryBank::cycles_for(usize bytes) const noexcept {
  const usize words = (bytes + kWordBytes - 1) / kWordBytes;
  const usize stream =
      (words + static_cast<usize>(words_per_cycle_) - 1) /
      static_cast<usize>(words_per_cycle_);
  return static_cast<std::uint64_t>(latency_) + stream;
}

std::uint64_t MemoryBank::read(usize bytes) noexcept {
  ++reads_;
  bytes_read_ += bytes;
  return cycles_for(bytes);
}

std::uint64_t MemoryBank::write(usize bytes) noexcept {
  ++writes_;
  bytes_written_ += bytes;
  return cycles_for(bytes);
}

void MemoryBank::reserve_bytes(usize bytes) noexcept {
  in_use_ += bytes;
  peak_ = std::max(peak_, in_use_);
}

void MemoryBank::release_bytes(usize bytes) noexcept {
  in_use_ -= std::min(in_use_, bytes);
}

void MemoryBank::reset_counters() noexcept {
  reads_ = writes_ = 0;
  bytes_read_ = bytes_written_ = 0;
  in_use_ = peak_ = 0;
}

}  // namespace sd
