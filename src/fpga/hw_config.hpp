// Hardware configuration of the simulated FPGA design.
//
// The paper deploys on a Xilinx Alveo U280 (Vitis HLS 2020.2). Two design
// points are evaluated:
//   * baseline  — a direct HLS port of the SD C++ code (253 MHz, sequential
//     MAC evaluation, un-prefetched memory accesses);
//   * optimized — the paper's contribution (300 MHz, systolic GEMM engine,
//     prefetch/double-buffer unit, MST, per-modulation specialization).
// Every constant here is a *model parameter*; the defaults are chosen to
// match the U280 datasheet and the paper's reported operating points, and
// are documented in DESIGN.md §5.
#pragma once

#include "common/types.hpp"
#include "mimo/constellation.hpp"

namespace sd {

/// Totals for the Alveo U280 (XCU280 device, from the datasheet the paper
/// cites as [23]).
struct U280Totals {
  static constexpr double kLuts = 1'303'680;
  static constexpr double kFfs = 2'607'360;
  static constexpr double kDsps = 9'024;
  static constexpr double kBram18 = 4'032;   ///< 18 Kb blocks
  static constexpr double kUram = 960;       ///< 288 Kb blocks
  static constexpr double kHbmBytes = 8.0 * (1ull << 30);
};

/// Numeric precision of the evaluation datapath (paper §V future work).
/// kInt16 models the fixed-point datapath measured on the CPU in
/// bench_quant_kernels: two int16 MACs pack into one DSP48 and the K stream
/// feeds 2 words/cycle, so the GEMM engine's K dimension effectively halves
/// (DESIGN.md §5). Its functional arithmetic reuses the fp32 path — the
/// measured fixed-point BER is indistinguishable at the calibrated scales.
enum class Precision : std::uint8_t { kFp32, kFp16, kInt16 };

/// One synthesized design point.
struct FpgaConfig {
  // --- design identity
  bool optimized = true;
  Modulation modulation = Modulation::kQam4;
  index_t num_tx = 10;
  index_t num_rx = 10;
  Precision precision = Precision::kFp32;

  // --- clocking
  double clock_mhz = 300.0;

  // --- GEMM engine (systolic mesh of fp32 MACs built from DSP slices)
  index_t mesh_rows = 8;
  index_t mesh_cols = 16;
  index_t gemm_fill_latency = 12;  ///< pipeline fill/drain per tile
  index_t mac_ii = 1;  ///< initiation interval of the (1x1) MAC chain; a
                       ///< direct HLS port cannot pipeline the fp32
                       ///< accumulation and stalls for the adder latency

  // --- memories
  index_t bram_latency = 1;    ///< on-chip block RAM, single cycle
  index_t hbm_latency = 64;    ///< random-access latency to HBM
  index_t hbm_words_per_cycle = 8;  ///< burst width once a stream is open
  double pcie_gbps = 12.0;     ///< effective host->card transfer rate
  double pcie_latency_s = 10e-6;  ///< round-trip latency of one staging DMA

  // --- pipeline units
  index_t branch_ii = 1;        ///< children generated per cycle
  index_t branch_setup = 4;     ///< per-expansion control overhead
  index_t norm_latency = 8;     ///< |.|^2 + accumulate pipeline depth
  index_t sort_stage_latency = 2;  ///< per bitonic stage
  index_t mst_insert_cycles = 1;   ///< BRAM write per committed child
  index_t radius_update_cycles = 4;

  // --- capacity
  usize mst_capacity_per_level = 1u << 16;

  [[nodiscard]] double clock_hz() const noexcept { return clock_mhz * 1e6; }

  /// The paper's baseline design point for a given system configuration.
  [[nodiscard]] static FpgaConfig baseline(index_t num_tx, index_t num_rx,
                                           Modulation mod);

  /// The paper's optimized design point.
  [[nodiscard]] static FpgaConfig optimized_design(index_t num_tx,
                                                   index_t num_rx,
                                                   Modulation mod);
};

}  // namespace sd
