// Pre-fetching / double-buffering unit model (paper §III-C2).
//
// The SD tree traversal makes irregular accesses into the channel matrix and
// tree-state storage: which block is needed depends on the node being
// processed. The paper's unit pre-computes addresses from (level, node)
// information and stages operands into ping-pong buffers so the GEMM engine
// always reads single-cycle BRAM. In the cycle model this means a staging
// fetch can hide behind the previous expansion's compute: only the part that
// exceeds the available overlap budget lands on the critical path.
#pragma once

#include <cstdint>

#include "fpga/memory_bank.hpp"

namespace sd {

class PrefetchUnit {
 public:
  /// `enabled` = optimized design (double buffering); the baseline design
  /// fetches on demand and always exposes the full source latency.
  PrefetchUnit(bool enabled, MemoryBank& source) noexcept
      : enabled_(enabled), source_(&source) {}

  /// Stages `bytes` of operands for the next expansion. `overlap_budget` is
  /// the compute time (cycles) of the expansion this fetch can hide behind.
  /// Returns the cycles exposed on the critical path.
  std::uint64_t stage(usize bytes, std::uint64_t overlap_budget) noexcept {
    const std::uint64_t fetch = source_->read(bytes);
    ++fetches_;
    if (!enabled_) {
      exposed_ += fetch;
      return fetch;
    }
    const std::uint64_t hidden = std::min(fetch, overlap_budget);
    hidden_ += hidden;
    const std::uint64_t exposed = fetch - hidden;
    exposed_ += exposed;
    return exposed;
  }

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] std::uint64_t fetches() const noexcept { return fetches_; }
  [[nodiscard]] std::uint64_t hidden_cycles() const noexcept { return hidden_; }
  [[nodiscard]] std::uint64_t exposed_cycles() const noexcept { return exposed_; }

  void reset_counters() noexcept {
    fetches_ = 0;
    hidden_ = 0;
    exposed_ = 0;
  }

 private:
  bool enabled_;
  MemoryBank* source_;
  std::uint64_t fetches_ = 0;
  std::uint64_t hidden_ = 0;
  std::uint64_t exposed_ = 0;
};

}  // namespace sd
