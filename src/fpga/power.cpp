#include "fpga/power.hpp"

#include <algorithm>

namespace sd {

namespace {
// Static rails (HBM controllers, shell, transceivers) measured on an idle
// U280 card.
constexpr double kStaticWatts = 5.0;
// Dynamic scale: Watts at full activity per unit of summed resource
// fractions, at the design clock. Calibrated to Table II.
constexpr double kDynamicScale = 22.8;
// Antenna count at which the pipeline reaches full occupancy.
constexpr double kSaturationTx = 15.0;
constexpr double kMinTx = 5.0;
}  // namespace

double fpga_power_watts(const FpgaConfig& config) {
  const ResourceEstimate est = estimate_resources(config);
  const double resource_sum =
      est.lut_frac() + est.dsp_frac() + est.bram_frac() + est.uram_frac();
  const double activity = std::clamp(
      (static_cast<double>(config.num_tx) - kMinTx) / (kSaturationTx - kMinTx),
      0.1, 1.0);
  const double clock_scale = config.clock_mhz / 300.0;
  return kStaticWatts + kDynamicScale * resource_sum * activity * clock_scale;
}

}  // namespace sd
