// FPGA resource-utilization estimator (reproduces the paper's Table I).
//
// An analytic post-synthesis model: each pipeline unit contributes LUTs /
// FFs / DSPs / BRAMs / URAMs according to its structural parameters
// (constellation order P, GEMM mesh size, MST capacity). The per-unit
// coefficients are calibrated against the four design points the paper
// reports for the Alveo U280 (baseline/optimized x 4-QAM/16-QAM); the model
// then generalizes to other configurations (64-QAM, different meshes) for
// the ablation benches. See DESIGN.md §5 for the calibration method.
#pragma once

#include "fpga/hw_config.hpp"

namespace sd {

/// Absolute resource counts for one synthesized design.
struct ResourceEstimate {
  double freq_mhz = 0;
  double luts = 0;
  double ffs = 0;
  double dsps = 0;
  double bram18 = 0;
  double urams = 0;

  /// Fractions of the U280 totals (what Table I reports).
  [[nodiscard]] double lut_frac() const noexcept {
    return luts / U280Totals::kLuts;
  }
  [[nodiscard]] double ff_frac() const noexcept {
    return ffs / U280Totals::kFfs;
  }
  [[nodiscard]] double dsp_frac() const noexcept {
    return dsps / U280Totals::kDsps;
  }
  [[nodiscard]] double bram_frac() const noexcept {
    return bram18 / U280Totals::kBram18;
  }
  [[nodiscard]] double uram_frac() const noexcept {
    return urams / U280Totals::kUram;
  }

  /// True if a second pipeline instance would fit (§III-C4's criterion:
  /// every class must stay at or below 50%).
  [[nodiscard]] bool second_pipeline_fits() const noexcept;
};

/// Estimates the synthesis result of a design point.
[[nodiscard]] ResourceEstimate estimate_resources(const FpgaConfig& config);

}  // namespace sd
