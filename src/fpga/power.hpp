// FPGA power model (reproduces the FPGA rows of the paper's Table II).
//
// Board power = static rail power + dynamic power proportional to the
// activity-weighted resource utilization of the loaded design. The activity
// factor saturates with the antenna count (larger systems keep the pipeline
// busier until the datapath is fully occupied). Coefficients are calibrated
// to the four operating points the paper measured with Vitis Analyzer
// (8 W .. 12.8 W); see DESIGN.md §5.
#pragma once

#include "fpga/hw_config.hpp"
#include "fpga/resources.hpp"

namespace sd {

/// Average board power (Watts) of a design while decoding.
[[nodiscard]] double fpga_power_watts(const FpgaConfig& config);

/// Energy (Joules) for a decode of the given duration.
[[nodiscard]] inline double fpga_energy_joules(const FpgaConfig& config,
                                               double seconds) {
  return fpga_power_watts(config) * seconds;
}

}  // namespace sd
