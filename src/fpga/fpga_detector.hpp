// Detector facade over the FPGA pipeline simulator.
//
// decode() runs the host-side preprocessing (QR of the channel estimate, as
// the paper's system does once per channel), then drives the simulated
// pipeline. NOTE the timing semantics: stats.search_seconds of the returned
// result is the *simulated device time* (cycles / clock + PCIe staging), not
// host wall-clock — that is the quantity the paper's figures plot for the
// FPGA series. Host wall-clock spent simulating is irrelevant to the model
// and not reported. Full per-unit detail is available via last_report().
#pragma once

#include "decode/detector.hpp"
#include "decode/sphere_common.hpp"
#include "fpga/pipeline.hpp"

namespace sd {

class FpgaDetector final : public Detector {
 public:
  FpgaDetector(const Constellation& constellation, FpgaConfig config,
               SdOptions search_options = {});

  [[nodiscard]] std::string_view name() const override {
    return pipeline_.config().optimized ? "FPGA-optimized" : "FPGA-baseline";
  }

  [[nodiscard]] DecodeResult decode(const CMat& h, std::span<const cplx> y,
                                    double sigma2) override;

  /// Per-unit cycle breakdown and memory statistics of the last decode.
  [[nodiscard]] const FpgaRunReport& last_report() const noexcept {
    return last_;
  }

  [[nodiscard]] const FpgaConfig& config() const noexcept {
    return pipeline_.config();
  }

 private:
  const Constellation* c_;
  SdOptions opts_;
  FpgaPipeline pipeline_;
  FpgaRunReport last_;
};

}  // namespace sd
