#include "fpga/systolic_gemm.hpp"

#include "common/error.hpp"
#include "fpga/half.hpp"
#include "linalg/gemm.hpp"

namespace sd {

SystolicGemmEngine::SystolicGemmEngine(index_t mesh_rows, index_t mesh_cols,
                                       index_t fill_latency,
                                       Precision precision, index_t mac_ii)
    : rows_(mesh_rows), cols_(mesh_cols), fill_(fill_latency),
      precision_(precision), mac_ii_(mac_ii) {
  SD_CHECK(mesh_rows >= 1 && mesh_cols >= 1, "mesh must be at least 1x1");
  SD_CHECK(fill_latency >= 0, "fill latency must be non-negative");
  SD_CHECK(mac_ii >= 1, "MAC initiation interval must be at least 1");
}

std::uint64_t SystolicGemmEngine::cycles_for(index_t m, index_t n,
                                             index_t k) const noexcept {
  const auto tiles_m = static_cast<std::uint64_t>((m + rows_ - 1) / rows_);
  const auto tiles_n = static_cast<std::uint64_t>((n + cols_ - 1) / cols_);
  // int16 datapath: two 16-bit MACs pack into one DSP48 (18x27 multiplier),
  // so each mesh cell consumes the K stream two words per cycle. Calibrated
  // against the measured CPU int16 kernel speedup (DESIGN.md §5).
  const std::uint64_t k_eff =
      precision_ == Precision::kInt16
          ? (static_cast<std::uint64_t>(k) + 1) / 2
          : static_cast<std::uint64_t>(k);
  if (rows_ == 1 && cols_ == 1) {
    // Baseline sequential MAC chain: one MAC per mac_ii cycles, no tiling.
    return static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
               k_eff * static_cast<std::uint64_t>(mac_ii_) +
           static_cast<std::uint64_t>(fill_);
  }
  return tiles_m * tiles_n * (k_eff + static_cast<std::uint64_t>(fill_));
}

std::uint64_t SystolicGemmEngine::run(const CMat& a, const CMat& b, CMat& c) {
  SD_CHECK(a.cols() == b.rows(), "GEMM inner dimensions must agree");
  SD_CHECK(a.rows() == c.rows() && b.cols() == c.cols(),
           "GEMM output shape mismatch");
  const index_t m = a.rows();
  const index_t n = b.cols();
  const index_t k = a.cols();

  if (precision_ != Precision::kFp16) {
    // fp32 — and int16, whose functional arithmetic the measured fixed-point
    // study (PR 8) showed BER-indistinguishable at the calibrated scales, so
    // only its cycle model differs.
    gemm_naive(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c);
  } else {
    // Half-precision datapath: operands quantized at the BRAM boundary and
    // every MAC rounded.
    for (index_t i = 0; i < m; ++i) {
      for (index_t j = 0; j < n; ++j) {
        cplx acc{0, 0};
        for (index_t t = 0; t < k; ++t) {
          acc = half_cmadd(acc, round_to_half(a(i, t)), round_to_half(b(t, j)));
        }
        c(i, j) = acc;
      }
    }
  }

  const std::uint64_t cycles = cycles_for(m, n, k);
  cycles_ += cycles;
  macs_ += static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
           static_cast<std::uint64_t>(k);
  ++calls_;
  return cycles;
}

}  // namespace sd
