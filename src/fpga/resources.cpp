#include "fpga/resources.hpp"

#include "mimo/constellation.hpp"

namespace sd {

namespace {

// --- Calibrated per-unit coefficients (see header). Units: LUTs/FFs per
// instance, DSPs per fp32 complex MAC (3 for the multiplier + 2 for the
// adder on UltraScale+), BRAM18/URAM blocks per buffer.

// Optimized design: shared control, systolic mesh, prefetch + MST.
constexpr double kOptBaseLuts = 65'000;    // control, prefetch, MST indexing
constexpr double kOptLaneLuts = 10'000;    // per child lane: branch+norm+sort
constexpr double kOptMacLuts = 600;        // glue per mesh MAC
constexpr double kOptBaseFfs = 147'000;
constexpr double kOptLaneFfs = 8'750;
constexpr double kOptBaseDsps = 20;        // address generation
constexpr double kOptLaneDsps = 4;         // NORM datapath per lane
constexpr double kDspsPerMac = 5;
constexpr double kOptBaseBram = 296;       // R / ybar / ping-pong buffers
constexpr double kOptLaneBram = 6.7;
constexpr double kOptUramBase = 52;        // MST partitions
constexpr double kOptUramPerP2 = 0.92;     // tree-state matrix ~ 4*Mod^2*N

// Baseline design: direct HLS port — replicated control logic and per-loop
// floating-point units, no systolic sharing, no buffer reuse (URAM 2x).
constexpr double kBaseBaseLuts = 287'000;
constexpr double kBaseLaneLuts = 22'800;
constexpr double kBaseBaseFfs = 460'000;
constexpr double kBaseLaneFfs = 15'200;
constexpr double kBaseBaseDsps = 480;
constexpr double kBaseLaneDsps = 60;
constexpr double kBaseBaseBram = 403;
constexpr double kBaseLaneBram = 10;
constexpr double kBaseUramBase = 104;
constexpr double kBaseUramPerP2 = 1.84;

// Half precision (paper §V): the fp16 datapath halves DSP cost per MAC
// (one DSP58-style mult + shared add), and on-chip buffers shrink 2x.
constexpr double kFp16DspScale = 0.5;
constexpr double kFp16MemScale = 0.5;

// Fixed point: two int16 MACs pack into one DSP48 and drop the fp adder
// DSPs entirely; operand buffers shrink 2x like fp16.
constexpr double kInt16DspScale = 0.4;
constexpr double kInt16MemScale = 0.5;

}  // namespace

bool ResourceEstimate::second_pipeline_fits() const noexcept {
  return lut_frac() <= 0.5 && ff_frac() <= 0.5 && dsp_frac() <= 0.5 &&
         bram_frac() <= 0.5 && uram_frac() <= 0.5;
}

ResourceEstimate estimate_resources(const FpgaConfig& config) {
  const double p = static_cast<double>(
      Constellation::get(config.modulation).order());
  const double p2 = p * p;
  const double macs =
      static_cast<double>(config.mesh_rows) * config.mesh_cols;

  ResourceEstimate est;
  est.freq_mhz = config.clock_mhz;
  if (config.optimized) {
    est.luts = kOptBaseLuts + kOptLaneLuts * p + kOptMacLuts * macs;
    est.ffs = kOptBaseFfs + kOptLaneFfs * p;
    est.dsps = kOptBaseDsps + kOptLaneDsps * p + kDspsPerMac * macs;
    est.bram18 = kOptBaseBram + kOptLaneBram * p;
    est.urams = kOptUramBase + kOptUramPerP2 * p2;
  } else {
    est.luts = kBaseBaseLuts + kBaseLaneLuts * p;
    est.ffs = kBaseBaseFfs + kBaseLaneFfs * p;
    est.dsps = kBaseBaseDsps + kBaseLaneDsps * p;
    est.bram18 = kBaseBaseBram + kBaseLaneBram * p;
    est.urams = kBaseUramBase + kBaseUramPerP2 * p2;
  }

  if (config.precision == Precision::kFp16) {
    est.dsps *= kFp16DspScale;
    est.bram18 *= kFp16MemScale;
    est.urams *= kFp16MemScale;
  } else if (config.precision == Precision::kInt16) {
    est.dsps *= kInt16DspScale;
    est.bram18 *= kInt16MemScale;
    est.urams *= kInt16MemScale;
  }
  return est;
}

}  // namespace sd
