// Multi-pipeline FPGA deployment (paper §III-C4 / §V).
//
// The optimized design's resource footprint deliberately stays under 50% of
// every class so that additional pipeline instances fit; decoding then
// parallelizes across *received vectors* (each vector's tree search is
// sequential, but a base station decodes many vectors concurrently). This
// module schedules a batch of decodes over P simulated pipeline instances
// and reports makespan/throughput, plus whether the instances actually fit
// on the U280 according to the resource model.
#pragma once

#include <vector>

#include "decode/sphere_common.hpp"
#include "fpga/pipeline.hpp"
#include "fpga/resources.hpp"

namespace sd {

struct MultiPipelineReport {
  int pipelines = 1;
  usize vectors = 0;
  bool fits_on_device = true;     ///< P x resources <= 100% in every class
  double makespan_seconds = 0;    ///< batch completion time
  double throughput_vps = 0;      ///< vectors per second
  double mean_latency_seconds = 0;///< per-vector decode latency (unchanged)
  std::vector<double> lane_busy_seconds;  ///< per-pipeline utilization
};

class MultiPipelineFpga {
 public:
  MultiPipelineFpga(const FpgaConfig& config, int num_pipelines);

  [[nodiscard]] int pipelines() const noexcept {
    return static_cast<int>(lanes_.size());
  }

  /// True if `num_pipelines` instances of the design fit on the card.
  [[nodiscard]] static bool fits(const FpgaConfig& config, int num_pipelines);

  /// Decodes a batch of preprocessed vectors: vectors are dispatched to the
  /// earliest-free lane in arrival order (what a streaming scheduler does).
  [[nodiscard]] MultiPipelineReport decode_batch(
      const std::vector<Preprocessed>& batch,
      const Constellation& constellation, double sigma2,
      const SdOptions& search_opts = {});

 private:
  FpgaConfig config_;
  std::vector<FpgaPipeline> lanes_;
};

}  // namespace sd
