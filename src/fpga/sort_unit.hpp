// Bitonic sorting-network model for the pruning phase (paper §II-B notes the
// sorting overhead "depends only on the modulation parameter and is
// dominated by the GEMM complexity" — this model makes that claim checkable).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace sd {

class SortUnit {
 public:
  explicit SortUnit(index_t stage_latency) noexcept
      : stage_latency_(stage_latency) {}

  /// Bitonic network stage count for n elements (n rounded up to a power of
  /// two): s(s+1)/2 with s = ceil(log2 n).
  [[nodiscard]] static std::uint64_t stages(usize n) noexcept;

  /// Cycle cost of sorting one batch of n child PDs, plus counter updates.
  std::uint64_t sort(usize n) noexcept {
    const std::uint64_t cycles =
        stages(n) * static_cast<std::uint64_t>(stage_latency_) +
        static_cast<std::uint64_t>(n);  // streaming the batch through
    total_cycles_ += cycles;
    ++batches_;
    return cycles;
  }

  [[nodiscard]] std::uint64_t total_cycles() const noexcept {
    return total_cycles_;
  }
  [[nodiscard]] std::uint64_t batches() const noexcept { return batches_; }

  void reset_counters() noexcept {
    total_cycles_ = 0;
    batches_ = 0;
  }

 private:
  index_t stage_latency_;
  std::uint64_t total_cycles_ = 0;
  std::uint64_t batches_ = 0;
};

}  // namespace sd
