// Memory models for the simulated card: on-chip BRAM/URAM partitions and the
// off-chip HBM stacks. Each bank tracks access counts, bytes moved, and the
// cycles those accesses cost under a simple latency + streaming-width model.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace sd {

class MemoryBank {
 public:
  /// `latency` = cycles until the first word of a request arrives;
  /// `words_per_cycle` = streaming width once the request is open.
  MemoryBank(std::string name, usize capacity_bytes, index_t latency,
             index_t words_per_cycle);

  [[nodiscard]] std::string_view name() const noexcept { return name_; }
  [[nodiscard]] usize capacity_bytes() const noexcept { return capacity_; }

  /// Cycle cost of a contiguous read of `bytes`; counters updated.
  std::uint64_t read(usize bytes) noexcept;

  /// Cycle cost of a contiguous write of `bytes`; counters updated.
  std::uint64_t write(usize bytes) noexcept;

  /// Records buffer residency (for capacity/high-water accounting).
  void reserve_bytes(usize bytes) noexcept;
  void release_bytes(usize bytes) noexcept;

  [[nodiscard]] std::uint64_t reads() const noexcept { return reads_; }
  [[nodiscard]] std::uint64_t writes() const noexcept { return writes_; }
  [[nodiscard]] std::uint64_t bytes_read() const noexcept { return bytes_read_; }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }
  [[nodiscard]] usize bytes_in_use() const noexcept { return in_use_; }
  [[nodiscard]] usize peak_bytes() const noexcept { return peak_; }
  [[nodiscard]] bool overflowed() const noexcept { return peak_ > capacity_; }

  void reset_counters() noexcept;

 private:
  [[nodiscard]] std::uint64_t cycles_for(usize bytes) const noexcept;

  std::string name_;
  usize capacity_;
  index_t latency_;
  index_t words_per_cycle_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  usize in_use_ = 0;
  usize peak_ = 0;
};

}  // namespace sd
