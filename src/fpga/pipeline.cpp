#include "fpga/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"
#include "decode/mst.hpp"
#include "linalg/gemm.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace sd {

namespace {

struct ListEntry {
  NodeId id;
  real pd;
};

struct Child {
  index_t symbol;
  real pd;
};

}  // namespace

void CycleBreakdown::export_counters(obs::CounterRegistry& registry,
                                     std::string_view prefix) const {
  const std::string p = prefix.empty() ? "" : std::string(prefix) + ".";
  registry.set(p + "branch", branch);
  registry.set(p + "prefetch_exposed", prefetch_exposed);
  registry.set(p + "gemm", gemm);
  registry.set(p + "norm", norm);
  registry.set(p + "sort", sort);
  registry.set(p + "mst", mst);
  registry.set(p + "radius", radius);
  registry.set(p + "total", total());
}

void FpgaRunReport::export_counters(obs::CounterRegistry& registry,
                                    std::string_view prefix) const {
  const std::string p = prefix.empty() ? "" : std::string(prefix) + ".";
  cycles.export_counters(registry, p + "cycles");
  result.stats.export_counters(registry, p + "decode");
  registry.set(p + "transfer_seconds", transfer_seconds);
  registry.set(p + "compute_seconds", compute_seconds);
  registry.set(p + "total_seconds", total_seconds);
  registry.set(p + "mst_peak_nodes", static_cast<std::uint64_t>(mst_peak_nodes));
  registry.set(p + "mst_overflow", std::uint64_t{mst_overflow ? 1u : 0u});
  registry.set(p + "hbm_bytes", hbm_bytes);
  registry.set(p + "uram_bytes_written", uram_bytes_written);
}

FpgaPipeline::FpgaPipeline(const FpgaConfig& config)
    : cfg_(config),
      gemm_engine_(config.mesh_rows, config.mesh_cols,
                   config.gemm_fill_latency, config.precision, config.mac_ii),
      hbm_("HBM", static_cast<usize>(U280Totals::kHbmBytes),
           config.hbm_latency, config.hbm_words_per_cycle),
      uram_("URAM", static_cast<usize>(U280Totals::kUram) * 288 * 1024 / 8,
            config.bram_latency, 1),
      prefetch_(config.optimized, hbm_),
      sorter_(config.sort_stage_latency) {}

FpgaRunReport FpgaPipeline::run(const Preprocessed& pre,
                                const Constellation& constellation,
                                double sigma2, const SdOptions& search_opts) {
  const Constellation& c = constellation;
  const index_t m = pre.r.rows();
  const index_t p = c.order();
  SD_CHECK(static_cast<index_t>(pre.ybar.size()) == m, "ybar length mismatch");

  FpgaRunReport report;
  DecodeResult& result = report.result;
  result.stats.tree_levels = static_cast<std::uint64_t>(m);

  gemm_engine_.reset_counters();
  hbm_.reset_counters();
  uram_.reset_counters();
  prefetch_.reset_counters();
  sorter_.reset_counters();

  // One-time host -> HBM staging over PCIe: channel matrix, received vector,
  // triangular factor. The paper measures this below 3% of execution.
  const double staged_bytes =
      static_cast<double>(sizeof(cplx)) *
      (static_cast<double>(cfg_.num_rx) * cfg_.num_tx +  // H
       static_cast<double>(m) * m +                      // R
       static_cast<double>(cfg_.num_rx) + m);            // y, ybar
  report.transfer_seconds =
      cfg_.pcie_latency_s + staged_bytes / (cfg_.pcie_gbps * 1e9);

  MetaStateTable mst(m, cfg_.mst_capacity_per_level, /*fixed_capacity=*/false);
  TreeList<ListEntry> open;

  double radius_sq = initial_radius_sq(search_opts, sigma2, m);
  bool found_leaf = false;
  std::vector<index_t> best_path(static_cast<usize>(m), 0);
  double best_pd = std::numeric_limits<double>::infinity();

  std::vector<index_t> path(static_cast<usize>(m), 0);
  std::vector<Child> children(static_cast<usize>(p));
  std::vector<Child> survivors;
  survivors.reserve(static_cast<usize>(p));
  std::vector<ListEntry> batch;
  batch.reserve(static_cast<usize>(p));

  CycleBreakdown& cyc = report.cycles;
  // Compute cycles of the previous expansion, available for the prefetch of
  // the next one to hide behind (ping-pong buffering).
  std::uint64_t prev_compute_cycles = 0;

  auto expand = [&](NodeId parent_id, index_t depth, real parent_pd) {
    const index_t a = m - 1 - depth;
    const index_t k = m - a;
    ++result.stats.nodes_expanded;
    result.stats.nodes_generated += static_cast<std::uint64_t>(p);

    // --- Phase 1: branching. P children at II = branch_ii after setup.
    {
      SD_TRACE_SPAN("fpga.branch");
      cyc.branch += static_cast<std::uint64_t>(cfg_.branch_setup) +
                    static_cast<std::uint64_t>(p) *
                        static_cast<std::uint64_t>(cfg_.branch_ii);
    }

    // --- Pre-fetch: R row block + the parent's tree-state block. In the
    // optimized design this hides behind the previous expansion's compute.
    const usize fetch_bytes =
        sizeof(cplx) *
        (static_cast<usize>(cfg_.optimized ? k * k : k) +  // R block / row
         static_cast<usize>(k) * p +                       // tree-state matrix
         1);                                               // ybar element
    {
      SD_TRACE_SPAN("fpga.prefetch");
      cyc.prefetch_exposed += prefetch_.stage(fetch_bytes, prev_compute_cycles);
    }

    // --- Phase 2: evaluation. The optimized design streams the full
    // (k x k) x (k x P) tree-state block product through the systolic
    // engine (the paper's GEMM refactoring); the baseline design is a
    // direct port of the scalar algorithm and evaluates only the new row
    // on its MAC chain. Row 0 of z — the PD input — is bitwise identical
    // to the CPU decoder's in both cases.
    const index_t a_rows = cfg_.optimized ? k : 1;
    CMat z(a_rows, p);
    std::uint64_t gemm_cycles = 0;
    {
      SD_TRACE_SPAN("fpga.gemm");
      CMat a_block(a_rows, k);
      for (index_t r2 = 0; r2 < a_rows; ++r2) {
        for (index_t t = r2; t < k; ++t) {
          a_block(r2, t) = pre.r(a + r2, a + t);
        }
      }
      CMat s_mat(k, p);
      for (index_t col = 0; col < p; ++col) s_mat(0, col) = c.point(col);
      for (index_t t = 1; t < k; ++t) {
        const cplx sym = c.point(path[static_cast<usize>(depth - t)]);
        for (index_t col = 0; col < p; ++col) s_mat(t, col) = sym;
      }
      gemm_cycles = gemm_engine_.run(a_block, s_mat, z);
      cyc.gemm += gemm_cycles;
      ++result.stats.gemm_calls;
      result.stats.flops += gemm_flops(a_rows, p, k);
    }

    // --- NORM: |ybar_a - z_c|^2 accumulate across the P lanes at the unit's
    // initiation interval (1 in the optimized design, stalled in the port).
    const std::uint64_t norm_cycles =
        static_cast<std::uint64_t>(cfg_.norm_latency) +
        static_cast<std::uint64_t>(p) * static_cast<std::uint64_t>(cfg_.branch_ii);
    {
      SD_TRACE_SPAN("fpga.norm");
      cyc.norm += norm_cycles;
      const cplx target = pre.ybar[static_cast<usize>(a)];
      for (index_t col = 0; col < p; ++col) {
        children[static_cast<usize>(col)] = {
            col, parent_pd + norm2(target - z(0, col))};
      }
    }

    // --- Phase 3: prune + sort (bitonic network over the sibling batch).
    std::uint64_t sort_cycles = 0;
    {
      SD_TRACE_SPAN("fpga.sort");
      survivors.clear();
      for (const Child& ch : children) {
        if (static_cast<double>(ch.pd) < radius_sq) {
          survivors.push_back(ch);
        } else {
          ++result.stats.nodes_pruned;
        }
      }
      sort_cycles = sorter_.sort(static_cast<usize>(p));
      cyc.sort += sort_cycles;
      result.stats.sort_ops += static_cast<std::uint64_t>(p);
    }

    // The ping-pong prefetch of the *next* expansion overlaps this entire
    // expansion's compute (branch through sort).
    prev_compute_cycles = static_cast<std::uint64_t>(cfg_.branch_setup) +
                          static_cast<std::uint64_t>(p) *
                              static_cast<std::uint64_t>(cfg_.branch_ii) +
                          gemm_cycles + norm_cycles + sort_cycles;

    if (survivors.empty()) return;
    std::sort(survivors.begin(), survivors.end(),
              [](const Child& x, const Child& y2) { return x.pd < y2.pd; });

    if (depth == m - 1) {
      const Child& best_child = survivors.front();
      ++result.stats.leaves_reached;
      result.stats.nodes_pruned += survivors.size() - 1;
      radius_sq = static_cast<double>(best_child.pd);
      best_pd = radius_sq;
      best_path = path;
      best_path[static_cast<usize>(depth)] = best_child.symbol;
      found_leaf = true;
      ++result.stats.radius_updates;
      cyc.radius += static_cast<std::uint64_t>(cfg_.radius_update_cycles);
      return;
    }

    batch.clear();
    for (const Child& ch : survivors) {
      const NodeId id = mst.insert(depth, MstNode{parent_id, ch.symbol, ch.pd});
      batch.push_back(ListEntry{id, ch.pd});
      cyc.mst += uram_.write(sizeof(MstNode)) - 1 +
                 static_cast<std::uint64_t>(cfg_.mst_insert_cycles);
    }
    open.push_sorted_batch(std::span<const ListEntry>(batch));
  };

  for (int attempt = 0;; ++attempt) {
    mst.reset();
    open.clear();
    prev_compute_cycles = 0;
    expand(kRootId, 0, real{0});

    while (!open.empty()) {
      if (result.stats.nodes_expanded >= search_opts.max_nodes) {
        result.stats.node_budget_hit = true;
        break;
      }
      const ListEntry entry = open.pop();
      if (static_cast<double>(entry.pd) >= radius_sq) {
        ++result.stats.nodes_pruned;
        continue;
      }
      const index_t depth = MetaStateTable::level_of(entry.id) + 1;
      mst.path_symbols(entry.id, path);
      expand(entry.id, depth, entry.pd);
    }

    result.stats.peak_list_size =
        std::max<std::uint64_t>(result.stats.peak_list_size, open.peak_size());
    report.mst_peak_nodes = std::max(report.mst_peak_nodes, mst.peak_level_count());

    if (found_leaf || result.stats.node_budget_hit ||
        search_opts.radius_policy == RadiusPolicy::kInfinite) {
      break;
    }
    radius_sq *= 2.0;
    SD_ASSERT(attempt < 64);
  }

  if (!found_leaf) {
    // Babai fallback (budget exhausted before a leaf) — identical to the CPU
    // decoder so results stay comparable.
    double pd = 0.0;
    for (index_t depth = 0; depth < m; ++depth) {
      const index_t a = m - 1 - depth;
      cplx acc{0, 0};
      for (index_t t = 1; t <= depth; ++t) {
        acc += pre.r(a, a + t) *
               c.point(best_path[static_cast<usize>(depth - t)]);
      }
      const cplx b = pre.ybar[static_cast<usize>(a)] - acc;
      const index_t sym = c.slice(b / pre.r(a, a));
      best_path[static_cast<usize>(depth)] = sym;
      pd += norm2(b - pre.r(a, a) * c.point(sym));
    }
    best_pd = pd;
  }

  report.mst_overflow = report.mst_peak_nodes > cfg_.mst_capacity_per_level;
  report.hbm_bytes = hbm_.bytes_read() + hbm_.bytes_written();
  report.uram_bytes_written = uram_.bytes_written();

  std::vector<index_t> layered(static_cast<usize>(m));
  for (index_t depth = 0; depth < m; ++depth) {
    layered[static_cast<usize>(m - 1 - depth)] =
        best_path[static_cast<usize>(depth)];
  }
  result.indices = to_antenna_order(pre, layered);
  result.metric = best_pd;
  materialize_symbols(c, result);

  report.compute_seconds =
      static_cast<double>(cyc.total()) / cfg_.clock_hz();
  report.total_seconds = report.compute_seconds + report.transfer_seconds;
  return report;
}

}  // namespace sd
