#include "fpga/half.hpp"

#include <bit>
#include <cstring>

namespace sd {

std::uint16_t float_to_half_bits(float value) noexcept {
  const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::int32_t exp = static_cast<std::int32_t>((f >> 23) & 0xFFu) - 127;
  std::uint32_t mant = f & 0x007FFFFFu;

  if (exp == 128) {  // inf or NaN
    return static_cast<std::uint16_t>(sign | 0x7C00u | (mant ? 0x0200u : 0));
  }
  if (exp > 15) {  // overflow -> inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (exp >= -14) {  // normal half
    // Round mantissa from 23 to 10 bits, round-to-nearest-even.
    std::uint32_t half = sign | (static_cast<std::uint32_t>(exp + 15) << 10) |
                         (mant >> 13);
    const std::uint32_t round_bits = mant & 0x1FFFu;
    if (round_bits > 0x1000u || (round_bits == 0x1000u && (half & 1u))) {
      ++half;  // may carry into the exponent; that is correct rounding
    }
    return static_cast<std::uint16_t>(half);
  }
  if (exp >= -25) {  // subnormal half
    mant |= 0x00800000u;  // make the implicit bit explicit
    // value = mant * 2^(exp-23); subnormal ulp is 2^-24, so the target
    // mantissa is mant >> (-exp - 1).
    const int shift = -exp - 1;
    std::uint32_t half = sign | (mant >> shift);
    const std::uint32_t round_mask = (1u << shift) - 1;
    const std::uint32_t round_bits = mant & round_mask;
    const std::uint32_t halfway = 1u << (shift - 1);
    if (round_bits > halfway || (round_bits == halfway && (half & 1u))) {
      ++half;
    }
    return static_cast<std::uint16_t>(half);
  }
  return static_cast<std::uint16_t>(sign);  // underflow -> signed zero
}

float half_bits_to_float(std::uint16_t bits) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1Fu;
  const std::uint32_t mant = bits & 0x03FFu;

  std::uint32_t f;
  if (exp == 0) {
    if (mant == 0) {
      f = sign;  // zero
    } else {
      // Subnormal: normalize.
      int e = -1;
      std::uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x0400u) == 0);
      f = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
          ((m & 0x03FFu) << 13);
    }
  } else if (exp == 0x1Fu) {
    f = sign | 0x7F800000u | (mant << 13);  // inf / NaN
  } else {
    f = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(f);
}

cplx half_cmadd(cplx acc, cplx a, cplx b) noexcept {
  // (ar + i*ai)(br + i*bi): four products and two adds, each rounded, then
  // the accumulation, rounded.
  const float pr1 = round_to_half(a.real() * b.real());
  const float pr2 = round_to_half(a.imag() * b.imag());
  const float pi1 = round_to_half(a.real() * b.imag());
  const float pi2 = round_to_half(a.imag() * b.real());
  const float re = round_to_half(round_to_half(pr1 - pr2) + acc.real());
  const float im = round_to_half(round_to_half(pi1 + pi2) + acc.imag());
  return {re, im};
}

}  // namespace sd
