// PrefetchUnit is header-only; this translation unit exists so the model has
// a home if stateful behaviour (e.g. multi-buffer scheduling) is added.
#include "fpga/prefetch.hpp"
