#include "fpga/fpga_detector.hpp"

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace sd {

FpgaDetector::FpgaDetector(const Constellation& constellation,
                           FpgaConfig config, SdOptions search_options)
    : c_(&constellation), opts_(search_options), pipeline_(config) {
  SD_CHECK(constellation.modulation() == config.modulation,
           "constellation/design modulation mismatch (the paper synthesizes "
           "one design per modulation)");
}

DecodeResult FpgaDetector::decode(const CMat& h, std::span<const cplx> y,
                                  double sigma2) {
  SD_TRACE_SPAN("decode");
  const Preprocessed pre = sd::preprocess(h, y, opts_.sorted_qr);
  last_ = pipeline_.run(pre, *c_, sigma2, opts_);
  DecodeResult result = last_.result;
  result.stats.preprocess_seconds = pre.seconds;
  // Simulated device latency (see header note).
  result.stats.search_seconds = last_.total_seconds;
  return result;
}

}  // namespace sd
