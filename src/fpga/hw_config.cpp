#include "fpga/hw_config.hpp"

namespace sd {

FpgaConfig FpgaConfig::baseline(index_t num_tx, index_t num_rx,
                                Modulation mod) {
  FpgaConfig cfg;
  cfg.optimized = false;
  cfg.modulation = mod;
  cfg.num_tx = num_tx;
  cfg.num_rx = num_rx;
  // Direct HLS port: lower achieved clock, no systolic mesh (a single MAC
  // chain, modelled as a 1x1 mesh), and no prefetch unit — every operand
  // fetch pays the HBM random-access latency.
  cfg.clock_mhz = 253.0;
  cfg.mesh_rows = 1;
  cfg.mesh_cols = 1;
  cfg.gemm_fill_latency = 8;
  // Un-pipelined HLS loops: the fp32 accumulator's latency becomes the MAC
  // initiation interval, and the branch/NORM loops carry the same stall.
  cfg.mac_ii = 6;
  cfg.branch_ii = 3;
  // Random (un-prefetched) strides cannot use full HBM burst width.
  cfg.hbm_words_per_cycle = 2;
  return cfg;
}

FpgaConfig FpgaConfig::optimized_design(index_t num_tx, index_t num_rx,
                                        Modulation mod) {
  FpgaConfig cfg;
  cfg.optimized = true;
  cfg.modulation = mod;
  cfg.num_tx = num_tx;
  cfg.num_rx = num_rx;
  cfg.clock_mhz = 300.0;
  // Per-modulation specialization (§III-C4): the mesh is sized to the
  // branching factor so one sibling batch fills exactly one tile column.
  cfg.mesh_rows = 8;
  cfg.mesh_cols = Constellation::get(mod).order();
  return cfg;
}

}  // namespace sd
