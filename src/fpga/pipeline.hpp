// Cycle-approximate simulation of the paper's dataflow pipeline (Fig. 4):
//
//   HBM -> [Pre-Fetch] -> [Branch] -> [GEMM engine] -> [NORM] -> [Sort/Prune]
//                     (tree state in BRAM, node database in the URAM MST)
//
// The pipeline executes the identical Best-FS search as SdGemmDetector —
// same traversal, same floating-point results (the paper: "we are careful to
// mimic the execution profile and operational sequence of the CPU
// execution") — while charging cycles to each hardware unit. The simulated
// decode latency is total_cycles / clock + the one-time PCIe staging cost
// the paper measures at under 3% of execution.
#pragma once

#include <cstdint>

#include "decode/detector.hpp"
#include "decode/sphere_common.hpp"
#include "fpga/hw_config.hpp"
#include "fpga/memory_bank.hpp"
#include "fpga/prefetch.hpp"
#include "fpga/sort_unit.hpp"
#include "fpga/systolic_gemm.hpp"

namespace sd {

/// Per-unit cycle accounting for one decode.
struct CycleBreakdown {
  std::uint64_t branch = 0;
  std::uint64_t prefetch_exposed = 0;  ///< staging cycles NOT hidden by compute
  std::uint64_t gemm = 0;
  std::uint64_t norm = 0;
  std::uint64_t sort = 0;
  std::uint64_t mst = 0;
  std::uint64_t radius = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return branch + prefetch_exposed + gemm + norm + sort + mst + radius;
  }

  /// Pours the per-unit cycle ledger into the unified counter registry
  /// (src/obs) under "<prefix>.<unit>" names, e.g. "fpga.cycles.gemm".
  void export_counters(obs::CounterRegistry& registry,
                       std::string_view prefix = "fpga.cycles") const;
};

/// Everything the benches need from one simulated decode.
struct FpgaRunReport {
  DecodeResult result;          ///< decisions + algorithmic stats
  CycleBreakdown cycles;
  double transfer_seconds = 0;  ///< PCIe staging (one-time per decode)
  double compute_seconds = 0;   ///< cycles / clock
  double total_seconds = 0;
  usize mst_peak_nodes = 0;     ///< high-water mark of one MST partition
  bool mst_overflow = false;    ///< design capacity would have been exceeded
  std::uint64_t hbm_bytes = 0;
  std::uint64_t uram_bytes_written = 0;

  /// Exports the cycle ledger, timing split, and memory/MST gauges under
  /// "<prefix>.*" plus the embedded DecodeStats under "<prefix>.decode.*".
  void export_counters(obs::CounterRegistry& registry,
                       std::string_view prefix = "fpga") const;
};

class FpgaPipeline {
 public:
  explicit FpgaPipeline(const FpgaConfig& config);

  [[nodiscard]] const FpgaConfig& config() const noexcept { return cfg_; }

  /// Runs one decode on a preprocessed triangular system. `search_opts`
  /// controls radius policy / node budget exactly as for the CPU decoders.
  [[nodiscard]] FpgaRunReport run(const Preprocessed& pre,
                                  const Constellation& constellation,
                                  double sigma2,
                                  const SdOptions& search_opts = {});

 private:
  FpgaConfig cfg_;
  SystolicGemmEngine gemm_engine_;
  MemoryBank hbm_;
  MemoryBank uram_;
  PrefetchUnit prefetch_;
  SortUnit sorter_;
};

}  // namespace sd
