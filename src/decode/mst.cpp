#include "decode/mst.hpp"

#include <string>

namespace sd {

MetaStateTable::MetaStateTable(index_t levels, usize capacity_per_level,
                               bool fixed_capacity)
    : levels_(levels), capacity_(capacity_per_level), fixed_(fixed_capacity) {
  SD_CHECK(levels > 0 && levels <= 256, "MST supports 1..256 levels");
  SD_CHECK(capacity_per_level > 0 && capacity_per_level <= (1u << 24),
           "MST level capacity must fit 24-bit slots");
  partitions_.resize(static_cast<usize>(levels));
  for (auto& p : partitions_) p.reserve(capacity_per_level);
}

NodeId MetaStateTable::insert(index_t level, const MstNode& node) {
  SD_CHECK(level >= 0 && level < levels_, "MST level out of range");
  auto& part = partitions_[static_cast<usize>(level)];
  if (part.size() >= capacity_) {
    if (fixed_) {
      throw capacity_error("MST partition overflow at level " +
                           std::to_string(level) + " (capacity " +
                           std::to_string(capacity_) + ")");
    }
    // Soft mode: grow; the high-water mark still reports true demand.
  }
  SD_ASSERT(part.size() < (1u << 24));
  const auto slot = static_cast<std::uint32_t>(part.size());
  part.push_back(node);
  ++total_;
  peak_level_ = std::max(peak_level_, part.size());
  return (static_cast<NodeId>(level) << 24) | slot;
}

const MstNode& MetaStateTable::get(NodeId id) const {
  const index_t level = level_of(id);
  const std::uint32_t slot = id & 0x00FFFFFFu;
  SD_CHECK(level < levels_, "MST id level out of range");
  const auto& part = partitions_[static_cast<usize>(level)];
  SD_CHECK(slot < part.size(), "MST id slot out of range");
  return part[slot];
}

usize MetaStateTable::level_count(index_t level) const {
  SD_CHECK(level >= 0 && level < levels_, "MST level out of range");
  return partitions_[static_cast<usize>(level)].size();
}

void MetaStateTable::path_symbols(NodeId id, std::span<index_t> out) const {
  NodeId cur = id;
  while (cur != kRootId) {
    const MstNode& node = get(cur);
    const index_t depth = level_of(cur);
    SD_CHECK(static_cast<usize>(depth) < out.size(), "path buffer too small");
    out[static_cast<usize>(depth)] = node.symbol;
    cur = node.parent;
  }
}

void MetaStateTable::reset() noexcept {
  for (auto& p : partitions_) p.clear();
  total_ = 0;
  peak_level_ = 0;
}

}  // namespace sd
