// GEMM-based sphere decoder with Breadth-First (level-synchronous) search —
// the algorithm of Arfaoui et al. [1], which the paper reproduces on an
// NVIDIA A100 as its GPU comparison point (Fig. 11).
//
// All nodes of a tree level are expanded together and their children are
// evaluated in ONE large GEMM per level (R row-block times the level's whole
// tree-state matrix), which is what makes the strategy GPU-friendly. The
// price is pruning quality: the radius cannot shrink until the leaf level is
// reached, so the frontier — and the GEMM volume — grows far beyond what the
// Best-FS decoder touches. The node/GEMM counts recorded here are exact and
// feed the A100 timing model.
#pragma once

#include "decode/decode_scratch.hpp"
#include "decode/detector.hpp"
#include "decode/mst.hpp"
#include "decode/sphere_common.hpp"
#include "quant/quant_gemm.hpp"

namespace sd {

struct BfsOptions {
  SdOptions base = {RadiusPolicy::kNoiseScaled, 2.0};
  /// Frontier cap (memory guard). When the surviving set of a level exceeds
  /// it, only the best `max_frontier` nodes are kept — the "heuristic to
  /// limit the search space" that GPU implementations resort to (§IV-F),
  /// potentially costing BER. Exceeding the cap is reported in the stats.
  usize max_frontier = 1u << 18;
  /// Run the fixed-point (int16 storage / int32 PD) datapath calibrated to
  /// the FPGA's arithmetic: int16 level GEMMs, exact integer PD comparisons,
  /// scale-aware radius, saturating requantize between levels (DESIGN.md
  /// §15). Falls back to the float search per frame when the quantized
  /// radius saturates without finding a leaf.
  bool quantized = false;
};

/// Quantized frontier entry: MST node id plus its exact int32 Q(2f) PD.
struct QuantNode {
  NodeId id;
  std::int32_t pd;
};

class SdGemmBfsDetector final : public Detector {
 public:
  explicit SdGemmBfsDetector(const Constellation& constellation,
                             BfsOptions options = {});
  ~SdGemmBfsDetector() override;  // FusedFrame is an incomplete type here

  [[nodiscard]] std::string_view name() const override {
    return opts_.quantized ? "SD-GEMM-BFS-i16" : "SD-GEMM-BFS";
  }

  [[nodiscard]] const BfsOptions& options() const noexcept { return opts_; }

  [[nodiscard]] DecodeResult decode(const CMat& h, std::span<const cplx> y,
                                    double sigma2) override;

  /// Primary entry point: allocation-free in steady state (the scratch and
  /// `out` reach their high-water capacity and are then recycled).
  void decode_into(const CMat& h, std::span<const cplx> y, double sigma2,
                   DecodeResult& out) override;

  /// Channel-split phase: the QR (plain or SQRD per options) is cacheable.
  /// The quantized variant requests the matching quant kind — the same float
  /// factorization plus the int16-calibrated R planes — which occupies its
  /// own (fingerprint, kind) cache slot, so quantized and float lanes never
  /// collide on one fingerprint.
  [[nodiscard]] PrepKind prep_kind() const noexcept override {
    if (opts_.quantized) {
      return opts_.base.sorted_qr ? PrepKind::kQrSortedQuant
                                  : PrepKind::kQrPlainQuant;
    }
    return opts_.base.sorted_qr ? PrepKind::kQrSorted : PrepKind::kQrPlain;
  }

  /// Decode against a cached factorization; bit-identical to decode_into().
  void decode_with(const PreprocessedChannel& prep, std::span<const cplx> y,
                   double sigma2, DecodeResult& out) override;

  /// Fused multi-frame decode: B frames sharing one prepared channel run the
  /// level-synchronous search in LOCKSTEP, stacking their frontier columns
  /// into a single k x (sum_j f_j * p) level GEMM — the wide products the SoA
  /// kernel rewards. Each frame's results AND stats are bit-identical to a
  /// sequential decode_with() per frame (see DESIGN.md §12 for the
  /// column-independence argument); frames that need a radius restart or
  /// exceed the fused operand budget are peeled off and re-run sequentially.
  /// Implemented as the shared-prep special case of decode_wide().
  void decode_batch_with(const PreprocessedChannel& prep,
                         std::span<BatchItem> items) override;

  /// Cross-channel ("wide") fused decode: frames with DIFFERENT channels run
  /// the lockstep level advance together, each level issuing ONE grouped
  /// block-diagonal GEMM over the distinct R blocks (DESIGN.md §14). Frames
  /// whose prep kind or dimension does not match are peeled to the
  /// sequential path up front; empty-frontier restarts and operand-budget
  /// demotions peel exactly as in decode_batch_with(). Per-frame results and
  /// stats stay bit-identical to sequential decode_with() calls.
  void decode_wide(std::span<WideItem> items) override;

  /// Tree search on an already-preprocessed system.
  void search(const Preprocessed& pre, double sigma2, DecodeResult& result);

  /// Fixed-point tree search: int16 level GEMMs against the prep's quantized
  /// R planes, int32 partial distances with EXACT integer comparisons, and a
  /// scale-aware integer radius. Reported PDs/metrics are dequantized. When
  /// the integer radius saturates with an empty frontier, the frame falls
  /// back to the float search() (counted in stats.quant_fallbacks).
  void search_quant(const Preprocessed& pre,
                    const quant::QuantChannelPrep& qprep, double sigma2,
                    DecodeResult& result);

  /// True if the last decode had to truncate a frontier (BER no longer
  /// guaranteed ML-optimal). After decode_batch_with() this reports the
  /// LAST frame of the batch, matching a sequential loop over the frames.
  [[nodiscard]] bool last_truncated() const noexcept { return truncated_; }

 private:
  struct FusedFrame;  // per-frame lockstep state (sd_gemm_bfs.cpp)

  /// Cross-channel wide decode on the fixed-point datapath: one grouped
  /// int16 level product per level, per-frame QuantSpecs (scales may differ
  /// across channels), identical peeling rules to the float wide path.
  void decode_wide_quant(std::span<WideItem> items);

  const Constellation* c_;
  BfsOptions opts_;
  DecodeScratch scratch_;
  std::vector<std::unique_ptr<FusedFrame>> fused_;  ///< pooled across batches
  std::vector<WideItem> wide_items_;           ///< decode_batch_with adapter
  std::vector<GemmGroup> groups_;              ///< per-level grouped-GEMM map
  std::vector<const PreprocessedChannel*> block_keys_;  ///< distinct preps
  std::vector<const Preprocessed*> block_pres_;  ///< one R source per block

  // Quantized-path scratch (recycled across decodes like DecodeScratch).
  quant::QuantChannelPrep qlocal_;     ///< decode_into-path calibration
  std::vector<std::int16_t> qsyms_;    ///< constellation, (re,im) Q(f) pairs
  quant::I16Mat qa_re_, qa_im_;        ///< level A planes (possibly stacked)
  quant::I16Mat qs_ri_;                ///< interleaved tree-state operand
  quant::I32Mat qz_re_, qz_im_;        ///< exact Q(2f) level products
  std::vector<QuantNode> qfrontier_;
  std::vector<QuantNode> qnext_;
  std::vector<const quant::QuantChannelPrep*> block_qpreps_;  ///< wide blocks

  bool truncated_ = false;
};

}  // namespace sd
