#include "decode/parallel_sd.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace sd {

namespace {

struct SubTree {
  std::vector<index_t> prefix;  ///< symbols for depths 0..split_depth-1
  real pd = 0;
};

struct Child {
  index_t symbol;
  real pd;
};

}  // namespace

ParallelSdDetector::ParallelSdDetector(const Constellation& constellation,
                                       ParallelSdOptions options)
    : c_(&constellation), opts_(options) {
  SD_CHECK(opts_.split_depth >= 1, "split depth must be at least 1");
  // A finite initial radius could leave every sub-tree empty, and the
  // retry-with-larger-radius dance is not worth the synchronization cost
  // here; the first dispatched sub-tree (best prefix) pins the radius fast.
  opts_.base.radius_policy = RadiusPolicy::kInfinite;
}

DecodeResult ParallelSdDetector::decode(const CMat& h, std::span<const cplx> y,
                                        double sigma2) {
  SD_TRACE_SPAN("decode");
  DecodeResult result;
  const Preprocessed pre = preprocess(h, y, opts_.base.sorted_qr);
  result.stats.preprocess_seconds = pre.seconds;
  search(pre, sigma2, result);
  materialize_symbols(*c_, result);
  return result;
}

void ParallelSdDetector::search(const Preprocessed& pre, double sigma2,
                                DecodeResult& result) {
  SD_TRACE_SPAN("decode.search");
  const index_t m = pre.r.rows();
  const index_t p = c_->order();
  const index_t split = std::min(opts_.split_depth, m - 1);
  result.stats.tree_levels = static_cast<std::uint64_t>(m);

  Timer timer;

  // --- Partitioning phase (the "offline" step in [4]): enumerate all
  // prefixes down to the split depth with their PDs.
  std::vector<SubTree> subtrees{SubTree{{}, real{0}}};
  for (index_t depth = 0; depth < split; ++depth) {
    const index_t a = m - 1 - depth;
    std::vector<SubTree> expanded;
    expanded.reserve(subtrees.size() * static_cast<usize>(p));
    for (const SubTree& st : subtrees) {
      cplx interference{0, 0};
      for (index_t t = 1; t <= depth; ++t) {
        interference +=
            pre.r(a, a + t) * c_->point(st.prefix[static_cast<usize>(depth - t)]);
      }
      const cplx b = pre.ybar[static_cast<usize>(a)] - interference;
      for (index_t sym = 0; sym < p; ++sym) {
        SubTree child;
        child.prefix = st.prefix;
        child.prefix.push_back(sym);
        child.pd = st.pd + norm2(b - pre.r(a, a) * c_->point(sym));
        expanded.push_back(std::move(child));
      }
      result.stats.nodes_generated += static_cast<std::uint64_t>(p);
      ++result.stats.nodes_expanded;
    }
    subtrees.swap(expanded);
  }
  // Best-first dispatch order: promising sub-trees shrink the radius early.
  std::sort(subtrees.begin(), subtrees.end(),
            [](const SubTree& x, const SubTree& y2) { return x.pd < y2.pd; });

  // --- Shared state across PEs.
  std::atomic<double> radius_sq{initial_radius_sq(opts_.base, sigma2, m)};
  std::mutex best_mutex;
  std::vector<index_t> best_path(static_cast<usize>(m), 0);
  double best_pd = std::numeric_limits<double>::infinity();
  bool found_leaf = false;
  std::atomic<usize> next_subtree{0};
  DecodeStats shared_stats;  // merged under best_mutex

  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned num_threads =
      opts_.num_threads > 0 ? opts_.num_threads : std::max(1u, hw);

  auto worker = [&] {
    SD_TRACE_SPAN("psd.worker");
    DecodeStats local;
    std::vector<index_t> path(static_cast<usize>(m), 0);
    struct Level {
      std::vector<Child> ordered;
      usize next = 0;
    };
    std::vector<Level> levels(static_cast<usize>(m));

    auto enter_depth = [&](index_t d, real parent_pd) {
      const index_t a = m - 1 - d;
      ++local.nodes_expanded;
      local.nodes_generated += static_cast<std::uint64_t>(p);
      cplx interference{0, 0};
      for (index_t t = 1; t <= d; ++t) {
        interference +=
            pre.r(a, a + t) * c_->point(path[static_cast<usize>(d - t)]);
      }
      const cplx b = pre.ybar[static_cast<usize>(a)] - interference;
      Level& lvl = levels[static_cast<usize>(d)];
      lvl.ordered.clear();
      lvl.next = 0;
      for (index_t sym = 0; sym < p; ++sym) {
        lvl.ordered.push_back(
            Child{sym, parent_pd + norm2(b - pre.r(a, a) * c_->point(sym))});
      }
      std::sort(lvl.ordered.begin(), lvl.ordered.end(),
                [](const Child& x, const Child& y2) { return x.pd < y2.pd; });
    };

    while (true) {
      const usize si = next_subtree.fetch_add(1);
      if (si >= subtrees.size()) break;
      const SubTree& st = subtrees[si];
      if (static_cast<double>(st.pd) >= radius_sq.load(std::memory_order_relaxed)) {
        ++local.nodes_pruned;
        continue;
      }
      std::copy(st.prefix.begin(), st.prefix.end(), path.begin());

      index_t depth = split;
      enter_depth(depth, st.pd);
      while (depth >= split) {
        Level& lvl = levels[static_cast<usize>(depth)];
        if (lvl.next >= lvl.ordered.size()) {
          --depth;
          continue;
        }
        const Child child = lvl.ordered[lvl.next++];
        if (static_cast<double>(child.pd) >=
            radius_sq.load(std::memory_order_relaxed)) {
          local.nodes_pruned +=
              static_cast<std::uint64_t>(lvl.ordered.size() - lvl.next + 1);
          lvl.next = lvl.ordered.size();
          --depth;
          continue;
        }
        path[static_cast<usize>(depth)] = child.symbol;
        if (depth == m - 1) {
          ++local.leaves_reached;
          // The synchronization step of [4]: publish the improved radius.
          //
          // Shrink-safety audit (this is the spot where a naive
          // `radius_sq.store(child.pd)` outside the lock WOULD lose a
          // concurrent tighter radius and re-admit already-pruned leaves):
          //   1. Every write to radius_sq in this translation unit happens
          //      here, under best_mutex — there is no unlocked store.
          //   2. The store is guarded by `child.pd < best_pd`, and best_pd
          //      is itself only written here under the same mutex, so the
          //      sequence of values stored into radius_sq is strictly
          //      decreasing — a later (mutex-ordered) store can never
          //      overwrite a tighter radius with a looser one. This is the
          //      same monotone-min contract a lock-free CAS-min loop would
          //      provide; the mutex is already required for best_path, so
          //      the CAS loop would be redundant synchronization.
          //   3. The relaxed loads in the pruning tests may observe a stale
          //      (larger) radius. That admits extra work, never wrong
          //      results: best_pd/best_path — the answer — are maintained
          //      exclusively under the mutex, and pruning with any radius
          //      >= the true minimum keeps the optimum reachable.
          // Regression coverage: ParallelSd.RadiusPublicationUnderContention
          // (tests/test_parallel_sd.cpp), which runs under the TSan CI job.
          std::lock_guard<std::mutex> lock(best_mutex);
          if (static_cast<double>(child.pd) < best_pd) {
            best_pd = static_cast<double>(child.pd);
            best_path = path;
            found_leaf = true;
            radius_sq.store(best_pd, std::memory_order_relaxed);
            ++local.radius_updates;
          }
          continue;
        }
        ++depth;
        enter_depth(depth, child.pd);
      }
    }

    std::lock_guard<std::mutex> lock(best_mutex);
    shared_stats.nodes_expanded += local.nodes_expanded;
    shared_stats.nodes_generated += local.nodes_generated;
    shared_stats.nodes_pruned += local.nodes_pruned;
    shared_stats.leaves_reached += local.leaves_reached;
    shared_stats.radius_updates += local.radius_updates;
  };

  std::vector<std::thread> pool;
  pool.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  result.stats.nodes_expanded += shared_stats.nodes_expanded;
  result.stats.nodes_generated += shared_stats.nodes_generated;
  result.stats.nodes_pruned += shared_stats.nodes_pruned;
  result.stats.leaves_reached += shared_stats.leaves_reached;
  result.stats.radius_updates += shared_stats.radius_updates;

  SD_ASSERT(found_leaf);  // infinite initial radius guarantees a leaf

  std::vector<index_t> layered(static_cast<usize>(m));
  for (index_t d = 0; d < m; ++d) {
    layered[static_cast<usize>(m - 1 - d)] = best_path[static_cast<usize>(d)];
  }
  result.indices = to_antenna_order(pre, layered);
  result.metric = best_pd;
  result.stats.search_seconds = timer.elapsed_seconds();
}

}  // namespace sd
