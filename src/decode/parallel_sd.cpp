#include "decode/parallel_sd.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>
#include <thread>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace sd {

ParallelSdDetector::ParallelSdDetector(const Constellation& constellation,
                                       ParallelSdOptions options)
    : c_(&constellation), opts_(options) {
  SD_CHECK(opts_.split_depth >= 1, "split depth must be at least 1");
  // A finite initial radius could leave every sub-tree empty, and the
  // retry-with-larger-radius dance is not worth the synchronization cost
  // here; the first dispatched sub-tree (best prefix) pins the radius fast.
  opts_.base.radius_policy = RadiusPolicy::kInfinite;
}

DecodeResult ParallelSdDetector::decode(const CMat& h, std::span<const cplx> y,
                                        double sigma2) {
  DecodeResult result;
  decode_into(h, y, sigma2, result);
  return result;
}

void ParallelSdDetector::decode_into(const CMat& h, std::span<const cplx> y,
                                     double sigma2, DecodeResult& out) {
  SD_TRACE_SPAN("decode");
  out.reset();
  preprocess_into(h, y, opts_.base.sorted_qr, scratch_.prep, scratch_.pre);
  out.stats.preprocess_seconds = scratch_.pre.seconds;
  search(scratch_.pre, sigma2, out);
  materialize_symbols(*c_, out);
}

void ParallelSdDetector::decode_with(const PreprocessedChannel& prep,
                                     std::span<const cplx> y, double sigma2,
                                     DecodeResult& out) {
  if (prep.kind != prep_kind()) {
    Detector::decode_with(prep, y, sigma2, out);
    return;
  }
  SD_TRACE_SPAN("decode");
  out.reset();
  preprocess_with_channel(prep, y, scratch_.prep, scratch_.pre);
  out.stats.preprocess_seconds = scratch_.pre.seconds;
  search(scratch_.pre, sigma2, out);
  materialize_symbols(*c_, out);
}

void ParallelSdDetector::search(const Preprocessed& pre, double sigma2,
                                DecodeResult& result) {
  SD_TRACE_SPAN("decode.search");
  const index_t m = pre.r.rows();
  const index_t p = c_->order();
  const index_t split = std::min(opts_.split_depth, m - 1);
  result.stats.tree_levels = static_cast<std::uint64_t>(m);

  Timer timer;

  // --- Partitioning phase (the "offline" step in [4]): enumerate all
  // prefixes down to the split depth with their PDs. Prefixes are stored
  // flat — depth-d prefixes occupy rows of width d in prefix_flat_ — so the
  // whole phase recycles four detector-owned buffers instead of allocating
  // one vector per sub-tree.
  std::vector<index_t>& cur = prefix_flat_;
  std::vector<index_t>& nxt = prefix_flat_next_;
  std::vector<real>& cur_pd = prefix_pd_;
  std::vector<real>& nxt_pd = prefix_pd_next_;
  cur.clear();
  cur_pd.assign(1, real{0});  // the root: one empty prefix, PD 0
  usize count = 1;
  for (index_t depth = 0; depth < split; ++depth) {
    const index_t a = m - 1 - depth;
    const usize width = static_cast<usize>(depth);  // current prefix length
    nxt.resize(count * static_cast<usize>(p) * (width + 1));
    nxt_pd.resize(count * static_cast<usize>(p));
    for (usize si = 0; si < count; ++si) {
      const index_t* prefix = cur.data() + si * width;
      cplx interference{0, 0};
      for (index_t t = 1; t <= depth; ++t) {
        interference +=
            pre.r(a, a + t) *
            c_->point(prefix[static_cast<usize>(depth - t)]);
      }
      const cplx b = pre.ybar[static_cast<usize>(a)] - interference;
      for (index_t sym = 0; sym < p; ++sym) {
        const usize ci = si * static_cast<usize>(p) + static_cast<usize>(sym);
        index_t* dst = nxt.data() + ci * (width + 1);
        std::copy(prefix, prefix + width, dst);
        dst[width] = sym;
        nxt_pd[ci] =
            cur_pd[si] + norm2(b - pre.r(a, a) * c_->point(sym));
      }
      result.stats.nodes_generated += static_cast<std::uint64_t>(p);
      ++result.stats.nodes_expanded;
    }
    cur.swap(nxt);
    cur_pd.swap(nxt_pd);
    count *= static_cast<usize>(p);
  }
  const usize stride = static_cast<usize>(split);
  // Best-first dispatch order: promising sub-trees shrink the radius early.
  subtree_order_.resize(count);
  std::iota(subtree_order_.begin(), subtree_order_.end(), usize{0});
  std::sort(subtree_order_.begin(), subtree_order_.end(),
            [&](usize x, usize y2) { return cur_pd[x] < cur_pd[y2]; });

  // --- Shared state across PEs.
  std::atomic<double> radius_sq{initial_radius_sq(opts_.base, sigma2, m)};
  std::mutex best_mutex;
  std::vector<index_t>& best_path = scratch_.best_path;
  best_path.assign(static_cast<usize>(m), 0);
  double best_pd = std::numeric_limits<double>::infinity();
  bool found_leaf = false;
  std::atomic<usize> next_subtree{0};
  DecodeStats shared_stats;  // merged under best_mutex

  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned num_threads =
      opts_.num_threads > 0 ? opts_.num_threads : std::max(1u, hw);
  if (workers_.size() < num_threads) workers_.resize(num_threads);

  auto worker = [&](unsigned wi) {
    SD_TRACE_SPAN("psd.worker");
    DecodeStats local;
    PeScratch& pe = workers_[wi];
    std::vector<index_t>& path = pe.path;
    path.assign(static_cast<usize>(m), 0);
    if (pe.levels.size() < static_cast<usize>(m)) {
      pe.levels.resize(static_cast<usize>(m));
    }

    auto enter_depth = [&](index_t d, real parent_pd) {
      const index_t a = m - 1 - d;
      ++local.nodes_expanded;
      local.nodes_generated += static_cast<std::uint64_t>(p);
      cplx interference{0, 0};
      for (index_t t = 1; t <= d; ++t) {
        interference +=
            pre.r(a, a + t) * c_->point(path[static_cast<usize>(d - t)]);
      }
      const cplx b = pre.ybar[static_cast<usize>(a)] - interference;
      PeScratch::Level& lvl = pe.levels[static_cast<usize>(d)];
      lvl.ordered.clear();
      lvl.next = 0;
      for (index_t sym = 0; sym < p; ++sym) {
        lvl.ordered.push_back(ScratchChild{
            sym, parent_pd + norm2(b - pre.r(a, a) * c_->point(sym))});
      }
      std::sort(lvl.ordered.begin(), lvl.ordered.end(),
                [](const ScratchChild& x, const ScratchChild& y2) {
                  return x.pd < y2.pd;
                });
    };

    while (true) {
      const usize si = next_subtree.fetch_add(1);
      if (si >= subtree_order_.size()) break;
      const usize slot = subtree_order_[si];
      const real subtree_pd = cur_pd[slot];
      if (static_cast<double>(subtree_pd) >=
          radius_sq.load(std::memory_order_relaxed)) {
        ++local.nodes_pruned;
        continue;
      }
      const index_t* prefix = cur.data() + slot * stride;
      std::copy(prefix, prefix + stride, path.begin());

      index_t depth = split;
      enter_depth(depth, subtree_pd);
      while (depth >= split) {
        PeScratch::Level& lvl = pe.levels[static_cast<usize>(depth)];
        if (lvl.next >= lvl.ordered.size()) {
          --depth;
          continue;
        }
        const ScratchChild child = lvl.ordered[lvl.next++];
        if (static_cast<double>(child.pd) >=
            radius_sq.load(std::memory_order_relaxed)) {
          local.nodes_pruned +=
              static_cast<std::uint64_t>(lvl.ordered.size() - lvl.next + 1);
          lvl.next = lvl.ordered.size();
          --depth;
          continue;
        }
        path[static_cast<usize>(depth)] = child.symbol;
        if (depth == m - 1) {
          ++local.leaves_reached;
          // The synchronization step of [4]: publish the improved radius.
          //
          // Shrink-safety audit (this is the spot where a naive
          // `radius_sq.store(child.pd)` outside the lock WOULD lose a
          // concurrent tighter radius and re-admit already-pruned leaves):
          //   1. Every write to radius_sq in this translation unit happens
          //      here, under best_mutex — there is no unlocked store.
          //   2. The store is guarded by `child.pd < best_pd`, and best_pd
          //      is itself only written here under the same mutex, so the
          //      sequence of values stored into radius_sq is strictly
          //      decreasing — a later (mutex-ordered) store can never
          //      overwrite a tighter radius with a looser one. This is the
          //      same monotone-min contract a lock-free CAS-min loop would
          //      provide; the mutex is already required for best_path, so the
          //      CAS loop would be redundant synchronization.
          //   3. The relaxed loads in the pruning tests may observe a stale
          //      (larger) radius. That admits extra work, never wrong
          //      results: best_pd/best_path — the answer — are maintained
          //      exclusively under the mutex, and pruning with any radius
          //      >= the true minimum keeps the optimum reachable.
          // Regression coverage: ParallelSd.RadiusPublicationUnderContention
          // (tests/test_parallel_sd.cpp), which runs under the TSan CI job.
          std::lock_guard<std::mutex> lock(best_mutex);
          if (static_cast<double>(child.pd) < best_pd) {
            best_pd = static_cast<double>(child.pd);
            best_path = path;
            found_leaf = true;
            radius_sq.store(best_pd, std::memory_order_relaxed);
            ++local.radius_updates;
          }
          continue;
        }
        ++depth;
        enter_depth(depth, child.pd);
      }
    }

    std::lock_guard<std::mutex> lock(best_mutex);
    shared_stats.nodes_expanded += local.nodes_expanded;
    shared_stats.nodes_generated += local.nodes_generated;
    shared_stats.nodes_pruned += local.nodes_pruned;
    shared_stats.leaves_reached += local.leaves_reached;
    shared_stats.radius_updates += local.radius_updates;
  };

  std::vector<std::thread> pool;
  pool.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) pool.emplace_back(worker, t);
  for (auto& t : pool) t.join();

  result.stats.nodes_expanded += shared_stats.nodes_expanded;
  result.stats.nodes_generated += shared_stats.nodes_generated;
  result.stats.nodes_pruned += shared_stats.nodes_pruned;
  result.stats.leaves_reached += shared_stats.leaves_reached;
  result.stats.radius_updates += shared_stats.radius_updates;

  SD_ASSERT(found_leaf);  // infinite initial radius guarantees a leaf

  std::vector<index_t>& layered = scratch_.layered;
  layered.resize(static_cast<usize>(m));
  for (index_t d = 0; d < m; ++d) {
    layered[static_cast<usize>(m - 1 - d)] = best_path[static_cast<usize>(d)];
  }
  to_antenna_order_into(pre, layered, result.indices);
  result.metric = best_pd;
  result.stats.search_seconds = timer.elapsed_seconds();
}

}  // namespace sd
