#include "decode/parallel_sd.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>
#include <thread>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace sd {

ParallelSdDetector::ParallelSdDetector(const Constellation& constellation,
                                       ParallelSdOptions options)
    : c_(&constellation), opts_(options) {
  SD_CHECK(opts_.split_depth >= 1, "split depth must be at least 1");
  // A finite initial radius could leave every sub-tree empty, and the
  // retry-with-larger-radius dance is not worth the synchronization cost
  // here; the first dispatched sub-tree (best prefix) pins the radius fast.
  opts_.base.radius_policy = RadiusPolicy::kInfinite;
}

DecodeResult ParallelSdDetector::decode(const CMat& h, std::span<const cplx> y,
                                        double sigma2) {
  DecodeResult result;
  decode_into(h, y, sigma2, result);
  return result;
}

void ParallelSdDetector::decode_into(const CMat& h, std::span<const cplx> y,
                                     double sigma2, DecodeResult& out) {
  SD_TRACE_SPAN("decode");
  out.reset();
  preprocess_into(h, y, opts_.base.sorted_qr, scratch_.prep, scratch_.pre);
  out.stats.preprocess_seconds = scratch_.pre.seconds;
  search(scratch_.pre, sigma2, out);
  materialize_symbols(*c_, out);
}

void ParallelSdDetector::decode_with(const PreprocessedChannel& prep,
                                     std::span<const cplx> y, double sigma2,
                                     DecodeResult& out) {
  if (prep.kind != prep_kind()) {
    Detector::decode_with(prep, y, sigma2, out);
    return;
  }
  SD_TRACE_SPAN("decode");
  out.reset();
  preprocess_with_channel(prep, y, scratch_.prep, scratch_.pre);
  out.stats.preprocess_seconds = scratch_.pre.seconds;
  search(scratch_.pre, sigma2, out);
  materialize_symbols(*c_, out);
}

void ParallelSdDetector::decode_batch_with(const PreprocessedChannel& prep,
                                           std::span<BatchItem> items) {
  batch_wide_.clear();
  batch_wide_.reserve(items.size());
  for (BatchItem& it : items) {
    batch_wide_.push_back(WideItem{&prep, it.y, it.sigma2, it.out});
  }
  decode_wide(batch_wide_);
}

void ParallelSdDetector::decode_wide(std::span<WideItem> items) {
  // Items whose prep kind doesn't match ours can't join the fused partition;
  // they take the same per-frame fallback decode_with applies. With fewer
  // than two fusable frames there is nothing to fuse either.
  usize fusable = 0;
  for (const WideItem& it : items) {
    if (it.prep != nullptr && it.out != nullptr &&
        it.prep->kind == prep_kind()) {
      ++fusable;
    }
  }
  if (fusable <= 1) {
    for (WideItem& it : items) {
      if (it.prep != nullptr && it.out != nullptr) {
        decode_with(*it.prep, it.y, it.sigma2, *it.out);
      }
    }
    return;
  }

  SD_TRACE_SPAN("decode.wide");
  Timer timer;

  // --- Per-frame preprocessing + sub-tree partition (sequential, so the
  // shared PreprocessScratch and the partition ping-pong buffers are safe).
  if (wide_slots_.size() < fusable) wide_slots_.resize(fusable);
  usize nslots = 0;
  usize max_count = 0;
  for (WideItem& it : items) {
    if (it.prep == nullptr || it.out == nullptr) continue;
    if (it.prep->kind != prep_kind()) {
      decode_with(*it.prep, it.y, it.sigma2, *it.out);
      continue;
    }
    WideSlot& slot = wide_slots_[nslots++];
    slot.sigma2 = it.sigma2;
    slot.out = it.out;
    it.out->reset();
    preprocess_with_channel(*it.prep, it.y, scratch_.prep, slot.pre);
    it.out->stats.preprocess_seconds = slot.pre.seconds;
    const index_t m = slot.pre.r.rows();
    it.out->stats.tree_levels = static_cast<std::uint64_t>(m);
    slot.split = std::min(opts_.split_depth, m - 1);
    slot.count = partition_prefixes(slot.pre, slot.split, slot.prefix_flat,
                                    slot.prefix_pd, slot.order,
                                    it.out->stats);
    max_count = std::max(max_count, slot.count);
  }

  // --- Deterministic fused work-unit list: round-robin across frames in
  // each frame's best-first rank order, so every frame's most promising
  // sub-trees run first (front-loading radius shrinkage for ALL frames) and
  // the list itself is a pure function of the inputs.
  wide_units_.clear();
  for (usize rank = 0; rank < max_count; ++rank) {
    for (usize si = 0; si < nslots; ++si) {
      if (rank < wide_slots_[si].count) wide_units_.emplace_back(si, rank);
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned num_threads =
      opts_.num_threads > 0 ? opts_.num_threads : std::max(1u, hw);
  if (workers_.size() < num_threads) workers_.resize(num_threads);

  // Per-(worker, frame) local bests, reduced after the join in worker order
  // — the deterministic reduction. Per-frame shared radii are publication
  // -only (monotone CAS-min), so cross-worker timing can only change how
  // much work is pruned, never which leaf wins: every worker's candidate
  // set is fixed by the static unit assignment, and the global argmin is
  // recovered exactly by the ordered reduction.
  struct SlotBest {
    double pd = std::numeric_limits<double>::infinity();
    std::vector<index_t> path;
    DecodeStats stats;
  };
  std::vector<SlotBest> bests(static_cast<usize>(num_threads) * nslots);
  std::vector<std::atomic<double>> radii(nslots);
  for (usize si = 0; si < nslots; ++si) {
    radii[si].store(initial_radius_sq(opts_.base, wide_slots_[si].sigma2,
                                      wide_slots_[si].pre.r.rows()),
                    std::memory_order_relaxed);
  }

  auto worker = [&](unsigned wi) {
    SD_TRACE_SPAN("psd.wide_worker");
    PeScratch& pe = workers_[wi];
    // STATIC assignment: unit j -> worker j mod num_threads. Unlike the
    // fetch_add dispatch in search(), this makes each worker's work list —
    // and therefore its local best — independent of scheduling.
    for (usize j = wi; j < wide_units_.size();
         j += static_cast<usize>(num_threads)) {
      const usize si = wide_units_[j].first;
      const usize rank = wide_units_[j].second;
      WideSlot& slot = wide_slots_[si];
      SlotBest& best = bests[static_cast<usize>(wi) * nslots + si];
      std::atomic<double>& radius_sq = radii[si];
      const Preprocessed& pre = slot.pre;
      const index_t m = pre.r.rows();
      const index_t p = c_->order();
      const index_t split = slot.split;
      const usize stride = static_cast<usize>(split);
      DecodeStats& local = best.stats;

      std::vector<index_t>& path = pe.path;
      path.assign(static_cast<usize>(m), 0);
      if (pe.levels.size() < static_cast<usize>(m)) {
        pe.levels.resize(static_cast<usize>(m));
      }

      auto enter_depth = [&](index_t d, real parent_pd) {
        const index_t a = m - 1 - d;
        ++local.nodes_expanded;
        local.nodes_generated += static_cast<std::uint64_t>(p);
        cplx interference{0, 0};
        for (index_t t = 1; t <= d; ++t) {
          interference +=
              pre.r(a, a + t) * c_->point(path[static_cast<usize>(d - t)]);
        }
        const cplx b = pre.ybar[static_cast<usize>(a)] - interference;
        PeScratch::Level& lvl = pe.levels[static_cast<usize>(d)];
        lvl.ordered.clear();
        lvl.next = 0;
        for (index_t sym = 0; sym < p; ++sym) {
          lvl.ordered.push_back(ScratchChild{
              sym, parent_pd + norm2(b - pre.r(a, a) * c_->point(sym))});
        }
        std::sort(lvl.ordered.begin(), lvl.ordered.end(),
                  [](const ScratchChild& x, const ScratchChild& y2) {
                    return x.pd < y2.pd;
                  });
      };

      const usize subtree = slot.order[rank];
      const real subtree_pd = slot.prefix_pd[subtree];
      if (static_cast<double>(subtree_pd) >=
          radius_sq.load(std::memory_order_relaxed)) {
        ++local.nodes_pruned;
        continue;
      }
      const index_t* prefix = slot.prefix_flat.data() + subtree * stride;
      std::copy(prefix, prefix + stride, path.begin());

      index_t depth = split;
      enter_depth(depth, subtree_pd);
      while (depth >= split) {
        PeScratch::Level& lvl = pe.levels[static_cast<usize>(depth)];
        if (lvl.next >= lvl.ordered.size()) {
          --depth;
          continue;
        }
        const ScratchChild child = lvl.ordered[lvl.next++];
        if (static_cast<double>(child.pd) >=
            radius_sq.load(std::memory_order_relaxed)) {
          local.nodes_pruned +=
              static_cast<std::uint64_t>(lvl.ordered.size() - lvl.next + 1);
          lvl.next = lvl.ordered.size();
          --depth;
          continue;
        }
        path[static_cast<usize>(depth)] = child.symbol;
        if (depth == m - 1) {
          ++local.leaves_reached;
          if (static_cast<double>(child.pd) < best.pd) {
            best.pd = static_cast<double>(child.pd);
            best.path = path;
            // Lock-free monotone-min publication of this frame's radius.
            // Unlike search() there is no shared best_path to protect — the
            // answer lives in per-worker locals — so a CAS-min loop is the
            // whole synchronization. The same shrink-safety argument as in
            // search() applies: the stored sequence is non-increasing per
            // worker and the CAS only ever replaces a value with a smaller
            // one, so a tighter radius is never overwritten by a looser one,
            // and a stale (larger) radius read admits extra work but never
            // wrong results.
            double cur = radius_sq.load(std::memory_order_relaxed);
            while (best.pd < cur &&
                   !radius_sq.compare_exchange_weak(
                       cur, best.pd, std::memory_order_relaxed)) {
            }
            ++local.radius_updates;
          }
          continue;
        }
        ++depth;
        enter_depth(depth, child.pd);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) pool.emplace_back(worker, t);
  for (auto& t : pool) t.join();

  // --- Deterministic reduction: per frame, fold worker-local bests in
  // worker order 0..W-1 with a strict '<'. The set of (pd, path) candidates
  // per worker is schedule-independent (static assignment + publication-only
  // radii), so the winner — and thus indices and metric — is bit-identical
  // to sequential decode_with for any worker count.
  const double wall = timer.elapsed_seconds();
  for (usize si = 0; si < nslots; ++si) {
    WideSlot& slot = wide_slots_[si];
    DecodeResult& out = *slot.out;
    double best_pd = std::numeric_limits<double>::infinity();
    const std::vector<index_t>* best_path = nullptr;
    for (unsigned wi = 0; wi < num_threads; ++wi) {
      const SlotBest& b = bests[static_cast<usize>(wi) * nslots + si];
      out.stats.nodes_expanded += b.stats.nodes_expanded;
      out.stats.nodes_generated += b.stats.nodes_generated;
      out.stats.nodes_pruned += b.stats.nodes_pruned;
      out.stats.leaves_reached += b.stats.leaves_reached;
      out.stats.radius_updates += b.stats.radius_updates;
      if (b.pd < best_pd) {
        best_pd = b.pd;
        best_path = &b.path;
      }
    }
    SD_ASSERT(best_path != nullptr);  // infinite radius guarantees a leaf

    const index_t m = slot.pre.r.rows();
    std::vector<index_t>& layered = scratch_.layered;
    layered.resize(static_cast<usize>(m));
    for (index_t d = 0; d < m; ++d) {
      layered[static_cast<usize>(m - 1 - d)] =
          (*best_path)[static_cast<usize>(d)];
    }
    to_antenna_order_into(slot.pre, layered, out.indices);
    out.metric = best_pd;
    // Frames finish together at the join, so each is charged the fused wall
    // time; the dispatch layer amortizes the shared service across the run.
    out.stats.search_seconds = wall;
    materialize_symbols(*c_, out);
    slot.out = nullptr;
  }
}

usize ParallelSdDetector::partition_prefixes(const Preprocessed& pre,
                                             index_t split,
                                             std::vector<index_t>& flat,
                                             std::vector<real>& pd,
                                             std::vector<usize>& order,
                                             DecodeStats& stats) {
  const index_t m = pre.r.rows();
  const index_t p = c_->order();

  // Partitioning phase (the "offline" step in [4]): enumerate all prefixes
  // down to the split depth with their PDs. Prefixes are stored flat —
  // depth-d prefixes occupy rows of width d in `flat` — so the whole phase
  // recycles detector-owned buffers instead of allocating one vector per
  // sub-tree. The `_next_` members serve as ping-pong scratch; the swap
  // dance always leaves the final generation in the caller's buffers.
  std::vector<index_t>& cur = flat;
  std::vector<index_t>& nxt = prefix_flat_next_;
  std::vector<real>& cur_pd = pd;
  std::vector<real>& nxt_pd = prefix_pd_next_;
  cur.clear();
  cur_pd.assign(1, real{0});  // the root: one empty prefix, PD 0
  usize count = 1;
  for (index_t depth = 0; depth < split; ++depth) {
    const index_t a = m - 1 - depth;
    const usize width = static_cast<usize>(depth);  // current prefix length
    nxt.resize(count * static_cast<usize>(p) * (width + 1));
    nxt_pd.resize(count * static_cast<usize>(p));
    for (usize si = 0; si < count; ++si) {
      const index_t* prefix = cur.data() + si * width;
      cplx interference{0, 0};
      for (index_t t = 1; t <= depth; ++t) {
        interference +=
            pre.r(a, a + t) *
            c_->point(prefix[static_cast<usize>(depth - t)]);
      }
      const cplx b = pre.ybar[static_cast<usize>(a)] - interference;
      for (index_t sym = 0; sym < p; ++sym) {
        const usize ci = si * static_cast<usize>(p) + static_cast<usize>(sym);
        index_t* dst = nxt.data() + ci * (width + 1);
        std::copy(prefix, prefix + width, dst);
        dst[width] = sym;
        nxt_pd[ci] =
            cur_pd[si] + norm2(b - pre.r(a, a) * c_->point(sym));
      }
      stats.nodes_generated += static_cast<std::uint64_t>(p);
      ++stats.nodes_expanded;
    }
    cur.swap(nxt);
    cur_pd.swap(nxt_pd);
    count *= static_cast<usize>(p);
  }
  // Best-first dispatch order: promising sub-trees shrink the radius early.
  order.resize(count);
  std::iota(order.begin(), order.end(), usize{0});
  std::sort(order.begin(), order.end(),
            [&](usize x, usize y2) { return cur_pd[x] < cur_pd[y2]; });
  return count;
}

void ParallelSdDetector::search(const Preprocessed& pre, double sigma2,
                                DecodeResult& result) {
  SD_TRACE_SPAN("decode.search");
  const index_t m = pre.r.rows();
  const index_t p = c_->order();
  const index_t split = std::min(opts_.split_depth, m - 1);
  result.stats.tree_levels = static_cast<std::uint64_t>(m);

  Timer timer;

  partition_prefixes(pre, split, prefix_flat_, prefix_pd_, subtree_order_,
                     result.stats);
  std::vector<index_t>& cur = prefix_flat_;
  std::vector<real>& cur_pd = prefix_pd_;
  const usize stride = static_cast<usize>(split);

  // --- Shared state across PEs.
  std::atomic<double> radius_sq{initial_radius_sq(opts_.base, sigma2, m)};
  std::mutex best_mutex;
  std::vector<index_t>& best_path = scratch_.best_path;
  best_path.assign(static_cast<usize>(m), 0);
  double best_pd = std::numeric_limits<double>::infinity();
  bool found_leaf = false;
  std::atomic<usize> next_subtree{0};
  DecodeStats shared_stats;  // merged under best_mutex

  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned num_threads =
      opts_.num_threads > 0 ? opts_.num_threads : std::max(1u, hw);
  if (workers_.size() < num_threads) workers_.resize(num_threads);

  auto worker = [&](unsigned wi) {
    SD_TRACE_SPAN("psd.worker");
    DecodeStats local;
    PeScratch& pe = workers_[wi];
    std::vector<index_t>& path = pe.path;
    path.assign(static_cast<usize>(m), 0);
    if (pe.levels.size() < static_cast<usize>(m)) {
      pe.levels.resize(static_cast<usize>(m));
    }

    auto enter_depth = [&](index_t d, real parent_pd) {
      const index_t a = m - 1 - d;
      ++local.nodes_expanded;
      local.nodes_generated += static_cast<std::uint64_t>(p);
      cplx interference{0, 0};
      for (index_t t = 1; t <= d; ++t) {
        interference +=
            pre.r(a, a + t) * c_->point(path[static_cast<usize>(d - t)]);
      }
      const cplx b = pre.ybar[static_cast<usize>(a)] - interference;
      PeScratch::Level& lvl = pe.levels[static_cast<usize>(d)];
      lvl.ordered.clear();
      lvl.next = 0;
      for (index_t sym = 0; sym < p; ++sym) {
        lvl.ordered.push_back(ScratchChild{
            sym, parent_pd + norm2(b - pre.r(a, a) * c_->point(sym))});
      }
      std::sort(lvl.ordered.begin(), lvl.ordered.end(),
                [](const ScratchChild& x, const ScratchChild& y2) {
                  return x.pd < y2.pd;
                });
    };

    while (true) {
      const usize si = next_subtree.fetch_add(1);
      if (si >= subtree_order_.size()) break;
      const usize slot = subtree_order_[si];
      const real subtree_pd = cur_pd[slot];
      if (static_cast<double>(subtree_pd) >=
          radius_sq.load(std::memory_order_relaxed)) {
        ++local.nodes_pruned;
        continue;
      }
      const index_t* prefix = cur.data() + slot * stride;
      std::copy(prefix, prefix + stride, path.begin());

      index_t depth = split;
      enter_depth(depth, subtree_pd);
      while (depth >= split) {
        PeScratch::Level& lvl = pe.levels[static_cast<usize>(depth)];
        if (lvl.next >= lvl.ordered.size()) {
          --depth;
          continue;
        }
        const ScratchChild child = lvl.ordered[lvl.next++];
        if (static_cast<double>(child.pd) >=
            radius_sq.load(std::memory_order_relaxed)) {
          local.nodes_pruned +=
              static_cast<std::uint64_t>(lvl.ordered.size() - lvl.next + 1);
          lvl.next = lvl.ordered.size();
          --depth;
          continue;
        }
        path[static_cast<usize>(depth)] = child.symbol;
        if (depth == m - 1) {
          ++local.leaves_reached;
          // The synchronization step of [4]: publish the improved radius.
          //
          // Shrink-safety audit (this is the spot where a naive
          // `radius_sq.store(child.pd)` outside the lock WOULD lose a
          // concurrent tighter radius and re-admit already-pruned leaves):
          //   1. Every write to radius_sq in this translation unit happens
          //      here, under best_mutex — there is no unlocked store.
          //   2. The store is guarded by `child.pd < best_pd`, and best_pd
          //      is itself only written here under the same mutex, so the
          //      sequence of values stored into radius_sq is strictly
          //      decreasing — a later (mutex-ordered) store can never
          //      overwrite a tighter radius with a looser one. This is the
          //      same monotone-min contract a lock-free CAS-min loop would
          //      provide; the mutex is already required for best_path, so the
          //      CAS loop would be redundant synchronization.
          //   3. The relaxed loads in the pruning tests may observe a stale
          //      (larger) radius. That admits extra work, never wrong
          //      results: best_pd/best_path — the answer — are maintained
          //      exclusively under the mutex, and pruning with any radius
          //      >= the true minimum keeps the optimum reachable.
          // Regression coverage: ParallelSd.RadiusPublicationUnderContention
          // (tests/test_parallel_sd.cpp), which runs under the TSan CI job.
          std::lock_guard<std::mutex> lock(best_mutex);
          if (static_cast<double>(child.pd) < best_pd) {
            best_pd = static_cast<double>(child.pd);
            best_path = path;
            found_leaf = true;
            radius_sq.store(best_pd, std::memory_order_relaxed);
            ++local.radius_updates;
          }
          continue;
        }
        ++depth;
        enter_depth(depth, child.pd);
      }
    }

    std::lock_guard<std::mutex> lock(best_mutex);
    shared_stats.nodes_expanded += local.nodes_expanded;
    shared_stats.nodes_generated += local.nodes_generated;
    shared_stats.nodes_pruned += local.nodes_pruned;
    shared_stats.leaves_reached += local.leaves_reached;
    shared_stats.radius_updates += local.radius_updates;
  };

  std::vector<std::thread> pool;
  pool.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) pool.emplace_back(worker, t);
  for (auto& t : pool) t.join();

  result.stats.nodes_expanded += shared_stats.nodes_expanded;
  result.stats.nodes_generated += shared_stats.nodes_generated;
  result.stats.nodes_pruned += shared_stats.nodes_pruned;
  result.stats.leaves_reached += shared_stats.leaves_reached;
  result.stats.radius_updates += shared_stats.radius_updates;

  SD_ASSERT(found_leaf);  // infinite initial radius guarantees a leaf

  std::vector<index_t>& layered = scratch_.layered;
  layered.resize(static_cast<usize>(m));
  for (index_t d = 0; d < m; ++d) {
    layered[static_cast<usize>(m - 1 - d)] = best_path[static_cast<usize>(d)];
  }
  to_antenna_order_into(pre, layered, result.indices);
  result.metric = best_pd;
  result.stats.search_seconds = timer.elapsed_seconds();
}

}  // namespace sd
