// Multi-PE sphere decoding (the paper's §V future-work extension).
//
// The search tree is partitioned at a configurable split depth into
// |Omega|^split_depth nearly independent sub-trees, processed by a pool of
// worker threads ("Processing Entities"). Workers share the sphere radius
// through an atomic so an improvement found in one sub-tree immediately
// prunes the others — the synchronization pattern Nikitopoulos et al. [4]
// identify as the one unavoidable coupling point. Sub-trees are dispatched
// best-first (sorted by their root PD), which front-loads radius shrinkage.
#pragma once

#include "decode/detector.hpp"
#include "decode/sphere_common.hpp"

namespace sd {

struct ParallelSdOptions {
  SdOptions base = {};
  unsigned num_threads = 0;   ///< 0 = std::thread::hardware_concurrency()
  index_t split_depth = 1;    ///< tree depth at which sub-trees are cut
};

class ParallelSdDetector final : public Detector {
 public:
  explicit ParallelSdDetector(const Constellation& constellation,
                              ParallelSdOptions options = {});

  [[nodiscard]] std::string_view name() const override { return "SD-MultiPE"; }

  [[nodiscard]] DecodeResult decode(const CMat& h, std::span<const cplx> y,
                                    double sigma2) override;

  /// Search on a preprocessed system (stats accumulate across workers).
  void search(const Preprocessed& pre, double sigma2, DecodeResult& result);

 private:
  const Constellation* c_;
  ParallelSdOptions opts_;
};

}  // namespace sd
