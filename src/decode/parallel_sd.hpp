// Multi-PE sphere decoding (the paper's §V future-work extension).
//
// The search tree is partitioned at a configurable split depth into
// |Omega|^split_depth nearly independent sub-trees, processed by a pool of
// worker threads ("Processing Entities"). Workers share the sphere radius
// through an atomic so an improvement found in one sub-tree immediately
// prunes the others — the synchronization pattern Nikitopoulos et al. [4]
// identify as the one unavoidable coupling point. Sub-trees are dispatched
// best-first (sorted by their root PD), which front-loads radius shrinkage.
#pragma once

#include <utility>

#include "decode/decode_scratch.hpp"
#include "decode/detector.hpp"
#include "decode/sphere_common.hpp"

namespace sd {

struct ParallelSdOptions {
  SdOptions base = {};
  unsigned num_threads = 0;   ///< 0 = std::thread::hardware_concurrency()
  index_t split_depth = 1;    ///< tree depth at which sub-trees are cut
};

class ParallelSdDetector final : public Detector {
 public:
  explicit ParallelSdDetector(const Constellation& constellation,
                              ParallelSdOptions options = {});

  [[nodiscard]] std::string_view name() const override { return "SD-MultiPE"; }

  [[nodiscard]] DecodeResult decode(const CMat& h, std::span<const cplx> y,
                                    double sigma2) override;

  /// Allocation-aware decode; preprocessing and partition scratch are reused
  /// across calls (the per-decode thread pool itself still allocates).
  void decode_into(const CMat& h, std::span<const cplx> y, double sigma2,
                   DecodeResult& out) override;

  /// Channel-split phase: the QR (plain or SQRD per options) is cacheable.
  /// Workers read the shared prep strictly read-only (exercised under TSan
  /// by tests/test_channel_prep.cpp).
  [[nodiscard]] PrepKind prep_kind() const noexcept override {
    return opts_.base.sorted_qr ? PrepKind::kQrSorted : PrepKind::kQrPlain;
  }

  void decode_with(const PreprocessedChannel& prep, std::span<const cplx> y,
                   double sigma2, DecodeResult& out) override;

  /// Fused same-channel batch: forwarded through decode_wide with every item
  /// sharing one prep, so batches and cross-channel runs take one code path.
  void decode_batch_with(const PreprocessedChannel& prep,
                         std::span<BatchItem> items) override;

  /// Cross-channel wide decode (DESIGN.md §16): every frame's sub-tree
  /// partition is flattened into ONE work-unit list, interleaved round-robin
  /// across frames in each frame's best-first rank order, and assigned
  /// STATICALLY to workers (unit j -> worker j mod W). Each frame keeps its
  /// own shared radius (lock-free monotone CAS-min, publication-only), and
  /// per-(worker, frame) local bests are reduced after the join in worker
  /// order — a deterministic reduction, so the detected indices and metric
  /// are bit-identical to sequential decode_with() for any worker count.
  void decode_wide(std::span<WideItem> items) override;

  /// Search on a preprocessed system (stats accumulate across workers).
  void search(const Preprocessed& pre, double sigma2, DecodeResult& result);

 private:
  /// Per-worker ("Processing Entity") reusable traversal state. Workers
  /// index their own slot, so slots are touched by one thread at a time;
  /// the buffers persist across decode() calls.
  struct PeScratch {
    struct Level {
      std::vector<ScratchChild> ordered;
      usize next = 0;
    };
    std::vector<index_t> path;
    std::vector<Level> levels;
  };

  /// Per-frame state for decode_wide: the preprocessed system plus this
  /// frame's flat sub-tree partition. Slots persist across calls so the
  /// partition buffers are recycled.
  struct WideSlot {
    Preprocessed pre;
    std::vector<index_t> prefix_flat;
    std::vector<real> prefix_pd;
    std::vector<usize> order;
    usize count = 0;
    index_t split = 0;
    double sigma2 = 0.0;
    DecodeResult* out = nullptr;
  };

  /// Shared partition phase: enumerates the |Omega|^split prefixes of `pre`
  /// into `flat` (count x split, row-major) with PDs in `pd` and the
  /// best-first sort permutation in `order`. Returns the sub-tree count and
  /// accumulates partition-phase node counters into `stats`.
  usize partition_prefixes(const Preprocessed& pre, index_t split,
                           std::vector<index_t>& flat, std::vector<real>& pd,
                           std::vector<usize>& order, DecodeStats& stats);

  const Constellation* c_;
  ParallelSdOptions opts_;
  DecodeScratch scratch_;  ///< preprocessing + best_path/layered reuse

  // Partition-phase scratch: sub-tree prefixes stored FLAT (count x depth,
  // row-major) with a parallel PD array and a sort permutation, replacing the
  // per-sub-tree vectors that used to be allocated fresh every decode.
  std::vector<index_t> prefix_flat_;
  std::vector<index_t> prefix_flat_next_;
  std::vector<real> prefix_pd_;
  std::vector<real> prefix_pd_next_;
  std::vector<usize> subtree_order_;

  std::vector<PeScratch> workers_;

  // decode_wide state: per-frame slots, the interleaved (frame, rank) work
  // units, and the BatchItem -> WideItem adapter for decode_batch_with.
  std::vector<WideSlot> wide_slots_;
  std::vector<std::pair<usize, usize>> wide_units_;
  std::vector<WideItem> batch_wide_;
};

}  // namespace sd
