// Multi-PE sphere decoding (the paper's §V future-work extension).
//
// The search tree is partitioned at a configurable split depth into
// |Omega|^split_depth nearly independent sub-trees, processed by a pool of
// worker threads ("Processing Entities"). Workers share the sphere radius
// through an atomic so an improvement found in one sub-tree immediately
// prunes the others — the synchronization pattern Nikitopoulos et al. [4]
// identify as the one unavoidable coupling point. Sub-trees are dispatched
// best-first (sorted by their root PD), which front-loads radius shrinkage.
#pragma once

#include "decode/decode_scratch.hpp"
#include "decode/detector.hpp"
#include "decode/sphere_common.hpp"

namespace sd {

struct ParallelSdOptions {
  SdOptions base = {};
  unsigned num_threads = 0;   ///< 0 = std::thread::hardware_concurrency()
  index_t split_depth = 1;    ///< tree depth at which sub-trees are cut
};

class ParallelSdDetector final : public Detector {
 public:
  explicit ParallelSdDetector(const Constellation& constellation,
                              ParallelSdOptions options = {});

  [[nodiscard]] std::string_view name() const override { return "SD-MultiPE"; }

  [[nodiscard]] DecodeResult decode(const CMat& h, std::span<const cplx> y,
                                    double sigma2) override;

  /// Allocation-aware decode; preprocessing and partition scratch are reused
  /// across calls (the per-decode thread pool itself still allocates).
  void decode_into(const CMat& h, std::span<const cplx> y, double sigma2,
                   DecodeResult& out) override;

  /// Channel-split phase: the QR (plain or SQRD per options) is cacheable.
  /// Workers read the shared prep strictly read-only (exercised under TSan
  /// by tests/test_channel_prep.cpp).
  [[nodiscard]] PrepKind prep_kind() const noexcept override {
    return opts_.base.sorted_qr ? PrepKind::kQrSorted : PrepKind::kQrPlain;
  }

  void decode_with(const PreprocessedChannel& prep, std::span<const cplx> y,
                   double sigma2, DecodeResult& out) override;

  /// Search on a preprocessed system (stats accumulate across workers).
  void search(const Preprocessed& pre, double sigma2, DecodeResult& result);

 private:
  /// Per-worker ("Processing Entity") reusable traversal state. Workers
  /// index their own slot, so slots are touched by one thread at a time;
  /// the buffers persist across decode() calls.
  struct PeScratch {
    struct Level {
      std::vector<ScratchChild> ordered;
      usize next = 0;
    };
    std::vector<index_t> path;
    std::vector<Level> levels;
  };

  const Constellation* c_;
  ParallelSdOptions opts_;
  DecodeScratch scratch_;  ///< preprocessing + best_path/layered reuse

  // Partition-phase scratch: sub-tree prefixes stored FLAT (count x depth,
  // row-major) with a parallel PD array and a sort permutation, replacing the
  // per-sub-tree vectors that used to be allocated fresh every decode.
  std::vector<index_t> prefix_flat_;
  std::vector<index_t> prefix_flat_next_;
  std::vector<real> prefix_pd_;
  std::vector<real> prefix_pd_next_;
  std::vector<usize> subtree_order_;

  std::vector<PeScratch> workers_;
};

}  // namespace sd
