#include "decode/ml.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace sd {

DecodeResult MlDetector::decode(const CMat& h, std::span<const cplx> y,
                                double /*sigma2*/) {
  SD_TRACE_SPAN("decode");
  const index_t m = h.cols();
  const index_t n = h.rows();
  SD_CHECK(n == static_cast<index_t>(y.size()), "y length mismatch");
  const index_t order = c_->order();

  const double log_candidates =
      static_cast<double>(m) * std::log2(static_cast<double>(order));
  SD_CHECK(log_candidates <= 26.0,
           "ML search space too large; use a sphere decoder");
  std::uint64_t total = 1;
  for (index_t j = 0; j < m; ++j) total *= static_cast<std::uint64_t>(order);

  DecodeResult result;
  result.indices.assign(static_cast<usize>(m), 0);
  Timer timer;

  std::vector<index_t> current(static_cast<usize>(m), 0);
  // All accumulation runs in double precision: the mixed-radix walk updates
  // H*s incrementally up to |Omega|^M times, and single-precision drift over
  // millions of updates is enough to misrank near-tied candidates.
  std::vector<cplxd> hs(static_cast<usize>(n));
  // Incremental candidate update: start from all-zero indices, then walk the
  // mixed-radix counter, adjusting H*s by the single column that changed.
  for (index_t i = 0; i < n; ++i) {
    cplxd acc{0, 0};
    for (index_t j = 0; j < m; ++j) {
      acc += static_cast<cplxd>(h(i, j)) * static_cast<cplxd>(c_->point(0));
    }
    hs[static_cast<usize>(i)] = acc;
  }

  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t iter = 0;; ++iter) {
    double metric = 0.0;
    for (index_t i = 0; i < n; ++i) {
      const cplxd diff =
          static_cast<cplxd>(y[static_cast<usize>(i)]) - hs[static_cast<usize>(i)];
      metric += diff.real() * diff.real() + diff.imag() * diff.imag();
    }
    ++result.stats.leaves_reached;
    if (metric < best) {
      best = metric;
      result.indices = current;
      ++result.stats.radius_updates;
    }
    if (iter + 1 == total) break;

    // Advance the mixed-radix counter; update hs by the changed columns.
    index_t digit = 0;
    while (true) {
      const index_t old_sym = current[static_cast<usize>(digit)];
      const index_t new_sym = (old_sym + 1 == order) ? 0 : old_sym + 1;
      current[static_cast<usize>(digit)] = new_sym;
      const cplxd delta = static_cast<cplxd>(c_->point(new_sym)) -
                          static_cast<cplxd>(c_->point(old_sym));
      for (index_t i = 0; i < n; ++i) {
        hs[static_cast<usize>(i)] += static_cast<cplxd>(h(i, digit)) * delta;
      }
      if (new_sym != 0) break;
      ++digit;  // carried
      SD_ASSERT(digit < m);
    }
  }

  result.stats.search_seconds = timer.elapsed_seconds();
  result.metric = best;
  materialize_symbols(*c_, result);
  return result;
}

}  // namespace sd
