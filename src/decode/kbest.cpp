#include "decode/kbest.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace sd {

namespace {

struct PathNode {
  std::vector<index_t> path;  ///< symbols for depths 0..depth
  real pd = 0;
};

}  // namespace

KBestDetector::KBestDetector(const Constellation& constellation,
                             KBestOptions options)
    : c_(&constellation), opts_(options) {
  SD_CHECK(opts_.k >= 1, "K must be at least 1");
}

DecodeResult KBestDetector::decode(const CMat& h, std::span<const cplx> y,
                                   double /*sigma2*/) {
  SD_TRACE_SPAN("decode");
  DecodeResult result;
  const Preprocessed pre = sd::preprocess(h, y, opts_.sorted_qr);
  result.stats.preprocess_seconds = pre.seconds;
  search(pre, result);
  return result;
}

void KBestDetector::decode_with(const PreprocessedChannel& prep,
                                std::span<const cplx> y, double sigma2,
                                DecodeResult& out) {
  if (prep.kind != prep_kind()) {
    Detector::decode_with(prep, y, sigma2, out);
    return;
  }
  SD_TRACE_SPAN("decode");
  out.reset();
  preprocess_with_channel(prep, y, prep_scratch_, pre_);
  out.stats.preprocess_seconds = pre_.seconds;
  search(pre_, out);
}

void KBestDetector::search(const Preprocessed& pre,
                           DecodeResult& result) const {
  const index_t m = pre.r.rows();
  const index_t p = c_->order();
  result.stats.tree_levels = static_cast<std::uint64_t>(m);

  Timer timer;

  std::vector<PathNode> frontier{PathNode{{}, real{0}}};
  std::vector<PathNode> children;

  for (index_t depth = 0; depth < m; ++depth) {
    const index_t a = m - 1 - depth;
    children.clear();
    children.reserve(frontier.size() * static_cast<usize>(p));
    for (const PathNode& node : frontier) {
      ++result.stats.nodes_expanded;
      result.stats.nodes_generated += static_cast<std::uint64_t>(p);
      cplx interference{0, 0};
      for (index_t t = 1; t <= depth; ++t) {
        interference +=
            pre.r(a, a + t) * c_->point(node.path[static_cast<usize>(depth - t)]);
      }
      const cplx b = pre.ybar[static_cast<usize>(a)] - interference;
      const cplx raa = pre.r(a, a);
      for (index_t sym = 0; sym < p; ++sym) {
        PathNode child;
        child.path = node.path;
        child.path.push_back(sym);
        child.pd = node.pd + norm2(b - raa * c_->point(sym));
        children.push_back(std::move(child));
      }
    }
    if (children.size() > opts_.k) {
      std::nth_element(children.begin(),
                       children.begin() + static_cast<std::ptrdiff_t>(opts_.k),
                       children.end(), [](const PathNode& x, const PathNode& y2) {
                         return x.pd < y2.pd;
                       });
      result.stats.nodes_pruned += children.size() - opts_.k;
      children.resize(opts_.k);
    }
    result.stats.sort_ops += children.size();
    frontier.swap(children);
    result.stats.peak_list_size =
        std::max<std::uint64_t>(result.stats.peak_list_size, frontier.size());
  }

  const auto best_it = std::min_element(
      frontier.begin(), frontier.end(),
      [](const PathNode& x, const PathNode& y2) { return x.pd < y2.pd; });
  result.stats.leaves_reached = frontier.size();

  std::vector<index_t> layered(static_cast<usize>(m));
  for (index_t d = 0; d < m; ++d) {
    layered[static_cast<usize>(m - 1 - d)] = best_it->path[static_cast<usize>(d)];
  }
  result.indices = to_antenna_order(pre, layered);
  result.metric = static_cast<double>(best_it->pd);
  result.stats.search_seconds = timer.elapsed_seconds();
  materialize_symbols(*c_, result);
}

}  // namespace sd
