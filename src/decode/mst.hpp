// Meta State Table (paper §III-C3, Fig. 5).
//
// The search tree is built dynamically, but dynamic data structures and
// pointer-to-pointer addressing do not map to FPGA fabric. The MST replaces
// them: a level-partitioned node database where every node is an index-linked
// record {parent id, chosen symbol, partial distance}. A node's full symbol
// path — its block of the "tree state matrix" — is recovered by walking
// parent links, which on the FPGA is a partitioned single-cycle BRAM lookup.
//
// The CPU decoders share this structure so that the FPGA simulator and the
// CPU implementation traverse byte-identical trees.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace sd {

/// Node handle: level in the top 8 bits, slot within the level in the low 24.
using NodeId = std::uint32_t;

/// Sentinel id of the (implicit) root node, which has no symbols decided.
inline constexpr NodeId kRootId = 0xFFFFFFFFu;

/// One tree node record.
struct MstNode {
  NodeId parent = kRootId;  ///< id of the parent (kRootId for depth-0 nodes)
  index_t symbol = 0;       ///< constellation index decided at this level
  real pd = 0;              ///< cumulative partial distance (paper's node value)
};

/// Level-partitioned node store.
class MetaStateTable {
 public:
  /// `levels` = tree depth (M). `capacity_per_level` sizes each partition.
  /// With `fixed_capacity` the table refuses to grow (hardware behaviour,
  /// throwing sd::capacity_error on overflow — a sizing bug on a real board);
  /// otherwise partitions grow and the high-water mark feeds the URAM model.
  MetaStateTable(index_t levels, usize capacity_per_level,
                 bool fixed_capacity = false);

  [[nodiscard]] index_t levels() const noexcept { return levels_; }
  [[nodiscard]] usize capacity_per_level() const noexcept { return capacity_; }

  /// Appends a node at `level` (0 = first detected layer, i.e. antenna M-1).
  /// Returns its id.
  NodeId insert(index_t level, const MstNode& node);

  [[nodiscard]] const MstNode& get(NodeId id) const;

  [[nodiscard]] static index_t level_of(NodeId id) noexcept {
    return static_cast<index_t>(id >> 24);
  }

  /// Nodes currently stored at a level.
  [[nodiscard]] usize level_count(index_t level) const;

  [[nodiscard]] usize total_nodes() const noexcept { return total_; }
  [[nodiscard]] usize peak_level_count() const noexcept { return peak_level_; }

  /// Recovers the symbol path of a node: out[d] = symbol decided at depth d,
  /// for d = 0 .. level_of(id). out must have at least level_of(id)+1 slots.
  void path_symbols(NodeId id, std::span<index_t> out) const;

  /// Clears all partitions (capacity is retained).
  void reset() noexcept;

 private:
  index_t levels_;
  usize capacity_;
  bool fixed_;
  std::vector<std::vector<MstNode>> partitions_;
  usize total_ = 0;
  usize peak_level_ = 0;
};

}  // namespace sd
