// K-Best (breadth-limited) detector.
//
// A fixed-width variant of breadth-first tree search: every level keeps only
// the K lowest-PD nodes. Deterministic complexity like FSD, better BER
// shaping via the survivor sort. Included as the classic complexity/BER
// trade-off ablation against the exact sphere decoders.
#pragma once

#include "decode/detector.hpp"
#include "decode/sphere_common.hpp"

namespace sd {

struct KBestOptions {
  usize k = 16;            ///< survivors kept per level
  bool sorted_qr = true;
};

class KBestDetector final : public Detector {
 public:
  explicit KBestDetector(const Constellation& constellation,
                         KBestOptions options = {});

  [[nodiscard]] std::string_view name() const override { return "K-Best"; }

  [[nodiscard]] DecodeResult decode(const CMat& h, std::span<const cplx> y,
                                    double sigma2) override;

  /// Channel-split phase: the QR (SQRD by default) is cacheable.
  [[nodiscard]] PrepKind prep_kind() const noexcept override {
    return opts_.sorted_qr ? PrepKind::kQrSorted : PrepKind::kQrPlain;
  }

  /// Decode against a cached factorization; bit-identical to decode().
  void decode_with(const PreprocessedChannel& prep, std::span<const cplx> y,
                   double sigma2, DecodeResult& out) override;

 private:
  /// The breadth-limited search on an already-prepared triangular system.
  void search(const Preprocessed& pre, DecodeResult& result) const;

  const Constellation* c_;
  KBestOptions opts_;
  PreprocessScratch prep_scratch_;
  Preprocessed pre_;
};

}  // namespace sd
