#include "decode/mmse_neumann.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "linalg/gemm.hpp"
#include "linalg/norms.hpp"
#include "linalg/solve.hpp"
#include "obs/trace.hpp"

namespace sd {

void MmseNeumannDetector::prepare_system(const CMat& g, double sigma2,
                                         std::uint64_t fingerprint) {
  const index_t m = g.rows();
  SD_CHECK(g.cols() == m, "Gram matrix must be square");
  if (fingerprint != 0 && fingerprint == cache_fp_ && sigma2 == cache_sigma2_ &&
      g.flat().data() == cache_gdata_ && a_.rows() == m) {
    return;  // same (channel, sigma2) as the previous frame: A (and any
             // factor of it) are still valid.
  }
  a_.reshape(m, m);
  const auto src = g.flat();
  const auto dst = a_.flat();
  std::copy(src.begin(), src.end(), dst.begin());
  dinv_.resize(static_cast<usize>(m));
  for (index_t i = 0; i < m; ++i) {
    a_(i, i) += cplx{static_cast<real>(sigma2), 0};
    // G's diagonal is a column norm (real, positive for nonzero columns);
    // the Jacobi split D therefore inverts elementwise in the reals.
    const real d = a_(i, i).real();
    SD_CHECK(d > real{0}, "Gram diagonal must be positive");
    dinv_[static_cast<usize>(i)] = real{1} / d;
  }
  have_l_ = false;
  cache_fp_ = fingerprint;
  cache_sigma2_ = sigma2;
  cache_gdata_ = fingerprint != 0 ? g.flat().data() : nullptr;
}

void MmseNeumannDetector::solve_exact(DecodeStats& stats) {
  if (!have_l_) {
    cholesky_into(a_, l_);
    have_l_ = true;
  }
  // x_ currently holds y_mf; overwrite with the solution of A x = y_mf.
  cholesky_solve_in_place(l_, x_);
  ++stats.neumann_exact_solves;
}

void MmseNeumannDetector::solve_and_slice(const CMat& h,
                                          std::span<const cplx> y,
                                          DecodeResult& out) {
  const index_t m = h.cols();
  const usize um = static_cast<usize>(m);

  // Matched filter y_mf = H^H y.
  ymf_.resize(um);
  gemv(Op::kConjTrans, cplx{1, 0}, h, y, cplx{0, 0}, ymf_);

  x_.resize(um);
  if (opts_.k == 0) {
    std::copy(ymf_.begin(), ymf_.end(), x_.begin());
    solve_exact(out.stats);
  } else {
    // Jacobi form of the K-term Neumann series around A = D + E:
    //   x_0 = D^{-1} y_mf,  x_{t+1} = D^{-1} (y_mf - E x_t).
    xn_.resize(um);
    for (usize i = 0; i < um; ++i) {
      x_[i] = ymf_[i] * dinv_[i];
    }
    for (usize t = 1; t < opts_.k; ++t) {
      for (index_t i = 0; i < m; ++i) {
        cplx acc = ymf_[static_cast<usize>(i)];
        for (index_t j = 0; j < m; ++j) {
          if (j == i) continue;
          acc -= a_(i, j) * x_[static_cast<usize>(j)];
        }
        xn_[static_cast<usize>(i)] = acc * dinv_[static_cast<usize>(i)];
      }
      std::swap(x_, xn_);
    }
    out.stats.neumann_terms += opts_.k;

    // Relative-residual guard: ||A x - y_mf|| / ||y_mf||.
    rn_.resize(um);
    for (index_t i = 0; i < m; ++i) {
      cplx acc = -ymf_[static_cast<usize>(i)];
      for (index_t j = 0; j < m; ++j) {
        acc += a_(i, j) * x_[static_cast<usize>(j)];
      }
      rn_[static_cast<usize>(i)] = acc;
    }
    const double ymf_norm = norm2_sq(std::span<const cplx>(ymf_));
    const double rel_sq = ymf_norm > 0.0
                              ? norm2_sq(std::span<const cplx>(rn_)) / ymf_norm
                              : 0.0;
    if (rel_sq > opts_.residual_tol * opts_.residual_tol) {
      std::copy(ymf_.begin(), ymf_.end(), x_.begin());
      solve_exact(out.stats);
      ++out.stats.neumann_fallbacks;
    }
  }

  // Slice in place (hard_slice() would allocate a fresh index vector).
  out.indices.resize(um);
  for (usize i = 0; i < um; ++i) {
    out.indices[i] = c_->slice(x_[i]);
  }
  materialize_symbols(*c_, out);

  // Full residual through the Gram identity
  //   ||y - H s||^2 = ||y||^2 - 2 Re(s^H y_mf) + s^H G s,
  // O(M^2) on data already in the arena instead of the O(N_r M) residual
  // GEMV — on a 128x8 channel recomputing y - H s would cost as much as the
  // matched filter itself. a_ holds G + sigma2 I, so the diagonal term backs
  // the regularizer out. Both decode paths feed identical a_/ymf_ bytes
  // through this sum, preserving cached/one-shot bit-identity.
  cplxd cross{0, 0};
  cplxd quad{0, 0};
  for (index_t i = 0; i < m; ++i) {
    const cplxd si(out.symbols[static_cast<usize>(i)]);
    cross += std::conj(si) * cplxd(ymf_[static_cast<usize>(i)]);
    cplxd row{0, 0};
    for (index_t j = 0; j < m; ++j) {
      row += cplxd(a_(i, j)) * cplxd(out.symbols[static_cast<usize>(j)]);
    }
    row -= cplxd(cache_sigma2_, 0) * si;
    quad += std::conj(si) * row;
  }
  const double metric = norm2_sq(y) - 2.0 * cross.real() + quad.real();
  out.metric = metric > 0.0 ? metric : 0.0;  // float-G cancellation floor
}

void MmseNeumannDetector::decode_into(const CMat& h, std::span<const cplx> y,
                                      double sigma2, DecodeResult& out) {
  SD_TRACE_SPAN("decode");
  SD_CHECK(h.rows() == static_cast<index_t>(y.size()), "y length mismatch");
  SD_CHECK(h.rows() >= h.cols(), "MMSE-Neumann needs N_r >= N_t");
  out.reset();

  Timer pre_timer;
  // Identical GEMM call to gram() / build_channel_prep(kGramMmse), so the
  // one-shot path is bitwise-identical to the cached decode_with() path.
  g_.reshape(h.cols(), h.cols());
  gemm_naive(Op::kConjTrans, cplx{1, 0}, h, h, cplx{0, 0}, g_);
  prepare_system(g_, sigma2, 0);
  out.stats.preprocess_seconds = pre_timer.elapsed_seconds();

  Timer search_timer;
  solve_and_slice(h, y, out);
  out.stats.search_seconds = search_timer.elapsed_seconds();
  // g_ is scratch; never let a future decode_with() frame reuse this system.
  cache_fp_ = 0;
  cache_gdata_ = nullptr;
}

DecodeResult MmseNeumannDetector::decode(const CMat& h,
                                         std::span<const cplx> y,
                                         double sigma2) {
  DecodeResult out;
  decode_into(h, y, sigma2, out);
  return out;
}

void MmseNeumannDetector::decode_with(const PreprocessedChannel& prep,
                                      std::span<const cplx> y, double sigma2,
                                      DecodeResult& out) {
  if (prep.kind != PrepKind::kGramMmse) {
    Detector::decode_with(prep, y, sigma2, out);
    return;
  }
  SD_TRACE_SPAN("decode");
  const CMat& h = prep.channel.matrix();
  SD_CHECK(h.rows() == static_cast<index_t>(y.size()), "y length mismatch");
  out.reset();

  // The Gram matrix was paid once at prep build time; A = G + sigma2 I is
  // reused across consecutive frames with the same (channel, sigma2), so the
  // steady-state per-frame cost is the matched filter plus the solve.
  Timer pre_timer;
  prepare_system(prep.g, sigma2, prep.channel.fingerprint());
  out.stats.preprocess_seconds = pre_timer.elapsed_seconds();

  Timer search_timer;
  solve_and_slice(h, y, out);
  out.stats.search_seconds = search_timer.elapsed_seconds();
}

}  // namespace sd
