#include "decode/sphere_common.hpp"

#include "common/error.hpp"
#include "common/timer.hpp"
#include "linalg/gemm.hpp"
#include "linalg/ordering.hpp"
#include "obs/trace.hpp"

namespace sd {

Preprocessed preprocess(const CMat& h, std::span<const cplx> y,
                        bool sorted_qr) {
  SD_TRACE_SPAN("decode.preprocess.qr");
  SD_CHECK(h.rows() == static_cast<index_t>(y.size()), "y length mismatch");
  Preprocessed pre;
  Timer timer;
  if (sorted_qr) {
    SortedQr sq = qr_sorted(h);
    pre.r = std::move(sq.r);
    pre.perm = std::move(sq.perm);
    // ybar = Q^H y with the explicit thin Q from the sorted factorization.
    pre.ybar.assign(static_cast<usize>(h.cols()), cplx{0, 0});
    gemv(Op::kConjTrans, cplx{1, 0}, sq.q, y, cplx{0, 0}, pre.ybar);
  } else {
    const QrFactorization qr(h);
    pre.r = qr.r();
    pre.ybar = qr.apply_qh(y);
  }
  pre.seconds = timer.elapsed_seconds();
  return pre;
}

std::vector<index_t> to_antenna_order(const Preprocessed& pre,
                                      const std::vector<index_t>& layered) {
  if (pre.perm.empty()) return layered;
  SD_CHECK(pre.perm.size() == layered.size(), "permutation length mismatch");
  std::vector<index_t> out(layered.size());
  for (usize k = 0; k < layered.size(); ++k) {
    out[static_cast<usize>(pre.perm[k])] = layered[k];
  }
  return out;
}

double initial_radius_sq(const SdOptions& opts, double sigma2, index_t num_rx) {
  switch (opts.radius_policy) {
    case RadiusPolicy::kInfinite:
      return std::numeric_limits<double>::infinity();
    case RadiusPolicy::kNoiseScaled:
      SD_CHECK(opts.radius_alpha > 0.0, "radius_alpha must be positive");
      return opts.radius_alpha * sigma2 * static_cast<double>(num_rx);
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace sd
