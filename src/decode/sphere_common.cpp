#include "decode/sphere_common.hpp"

#include "common/error.hpp"
#include "common/timer.hpp"
#include "linalg/gemm.hpp"
#include "linalg/ordering.hpp"
#include "obs/trace.hpp"

namespace sd {

Preprocessed preprocess(const CMat& h, std::span<const cplx> y,
                        bool sorted_qr) {
  Preprocessed pre;
  PreprocessScratch scratch;
  preprocess_into(h, y, sorted_qr, scratch, pre);
  return pre;
}

void preprocess_into(const CMat& h, std::span<const cplx> y, bool sorted_qr,
                     PreprocessScratch& scratch, Preprocessed& pre) {
  SD_TRACE_SPAN("decode.preprocess.qr");
  SD_CHECK(h.rows() == static_cast<index_t>(y.size()), "y length mismatch");
  Timer timer;
  if (sorted_qr) {
    SortedQr sq = qr_sorted(h);
    pre.r = std::move(sq.r);
    pre.perm = std::move(sq.perm);
    // ybar = Q^H y with the explicit thin Q from the sorted factorization.
    pre.ybar.assign(static_cast<usize>(h.cols()), cplx{0, 0});
    gemv(Op::kConjTrans, cplx{1, 0}, sq.q, y, cplx{0, 0}, pre.ybar);
  } else {
    scratch.qr.factor(h);
    pre.r = scratch.qr.r();  // copy-assign; reuses pre's storage
    scratch.qr.apply_qh_into(y, pre.ybar, scratch.work);
    pre.perm.clear();
  }
  pre.seconds = timer.elapsed_seconds();
}

void preprocess_with_channel(const PreprocessedChannel& prep,
                             std::span<const cplx> y,
                             PreprocessScratch& scratch, Preprocessed& pre) {
  SD_TRACE_SPAN("decode.preprocess.cached");
  const CMat& h = prep.channel.matrix();
  SD_CHECK(h.rows() == static_cast<index_t>(y.size()), "y length mismatch");
  Timer timer;
  switch (prep.kind) {
    // Quant kinds carry the identical float factorization alongside the
    // int16 planes, so the per-frame ybar path is byte-for-byte shared.
    case PrepKind::kQrSorted:
    case PrepKind::kQrSortedQuant:
      pre.r = prep.r;  // copy-assign; reuses pre's storage
      pre.perm.assign(prep.perm.begin(), prep.perm.end());
      pre.ybar.assign(static_cast<usize>(h.cols()), cplx{0, 0});
      gemv(Op::kConjTrans, cplx{1, 0}, prep.q, y, cplx{0, 0}, pre.ybar);
      break;
    case PrepKind::kQrPlain:
    case PrepKind::kQrPlainQuant:
      pre.r = prep.qr.r();
      prep.qr.apply_qh_into(y, pre.ybar, scratch.work);
      pre.perm.clear();
      break;
    default:
      SD_CHECK(false, "channel prep kind has no triangular system");
  }
  pre.seconds = timer.elapsed_seconds();
}

std::vector<index_t> to_antenna_order(const Preprocessed& pre,
                                      const std::vector<index_t>& layered) {
  std::vector<index_t> out;
  to_antenna_order_into(pre, layered, out);
  return out;
}

void to_antenna_order_into(const Preprocessed& pre,
                           const std::vector<index_t>& layered,
                           std::vector<index_t>& out) {
  if (pre.perm.empty()) {
    out.assign(layered.begin(), layered.end());
    return;
  }
  SD_CHECK(pre.perm.size() == layered.size(), "permutation length mismatch");
  out.resize(layered.size());
  for (usize k = 0; k < layered.size(); ++k) {
    out[static_cast<usize>(pre.perm[k])] = layered[k];
  }
}

double initial_radius_sq(const SdOptions& opts, double sigma2, index_t num_rx) {
  switch (opts.radius_policy) {
    case RadiusPolicy::kInfinite:
      return std::numeric_limits<double>::infinity();
    case RadiusPolicy::kNoiseScaled:
      SD_CHECK(opts.radius_alpha > 0.0, "radius_alpha must be positive");
      return opts.radius_alpha * sigma2 * static_cast<double>(num_rx);
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace sd
