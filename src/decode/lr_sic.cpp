#include "decode/lr_sic.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"
#include "linalg/gemm.hpp"
#include "linalg/lll.hpp"
#include "linalg/qr.hpp"

namespace sd {

LrSicDetector::LrSicDetector(const Constellation& constellation,
                             double lll_delta)
    : c_(&constellation), delta_(lll_delta) {
  SD_CHECK(constellation.modulation() != Modulation::kBpsk,
           "LR-SIC requires a square QAM constellation");
  levels_ = static_cast<int>(std::lround(
      std::sqrt(static_cast<double>(constellation.order()))));
  SD_ASSERT(levels_ * levels_ == constellation.order());
  // point = axis_scale * (2u - (L-1)(1+j)) with u's components in [0, L-1];
  // recover the scale from the first two points' grid spacing.
  axis_scale_ = (c_->point(1).imag() - c_->point(0).imag()) / real{2};
  SD_ASSERT(axis_scale_ > real{0});
}

DecodeResult LrSicDetector::decode(const CMat& h, std::span<const cplx> y,
                                   double /*sigma2*/) {
  SD_TRACE_SPAN("decode");
  const index_t m = h.cols();
  SD_CHECK(h.rows() == static_cast<index_t>(y.size()), "y length mismatch");
  DecodeResult result;
  Timer pre_timer;

  // 1. Shift/scale so the transmit alphabet becomes u in {0..L-1}^2 Gaussian
  //    integers: y' = (y - H * offset) / (2 * axis_scale) = H u + n'.
  const cplx offset{-axis_scale_ * static_cast<real>(levels_ - 1),
                    -axis_scale_ * static_cast<real>(levels_ - 1)};
  CVec y_shift(y.begin(), y.end());
  CVec ones(static_cast<usize>(m), offset);
  gemv(Op::kNone, cplx{-1, 0}, h, ones, cplx{1, 0}, y_shift);
  const real inv_step = real{1} / (real{2} * axis_scale_);
  for (cplx& v : y_shift) v *= inv_step;

  // 2. Reduce the basis and detect v (where u = T v) by SIC with plain
  //    rounding in the reduced, better-conditioned basis.
  const LllResult lll = lll_reduce(h, delta_);
  result.stats.preprocess_seconds = pre_timer.elapsed_seconds();
  Timer search_timer;

  const QrFactorization qr(lll.reduced);
  const CVec ybar = qr.apply_qh(y_shift);
  const CMat& r = qr.r();
  CVec v(static_cast<usize>(m), cplx{0, 0});
  for (index_t i = m - 1; i >= 0; --i) {
    cplx acc = ybar[static_cast<usize>(i)];
    for (index_t j = i + 1; j < m; ++j) {
      acc -= r(i, j) * v[static_cast<usize>(j)];
    }
    v[static_cast<usize>(i)] = round_gaussian(acc / r(i, i));
    ++result.stats.nodes_expanded;  // one SIC decision per layer
  }

  // 3. Map back u = T v, clamp onto the constellation grid, re-symbolize.
  CVec u(static_cast<usize>(m), cplx{0, 0});
  gemv(Op::kNone, cplx{1, 0}, lll.t, v, cplx{0, 0}, u);
  result.indices.resize(static_cast<usize>(m));
  for (index_t i = 0; i < m; ++i) {
    auto clamp_axis = [&](real x) {
      const auto k = static_cast<int>(std::lround(x));
      return std::clamp(k, 0, levels_ - 1);
    };
    const int ki = clamp_axis(u[static_cast<usize>(i)].real());
    const int kq = clamp_axis(u[static_cast<usize>(i)].imag());
    const cplx point{
        axis_scale_ * static_cast<real>(2 * ki - (levels_ - 1)),
        axis_scale_ * static_cast<real>(2 * kq - (levels_ - 1))};
    result.indices[static_cast<usize>(i)] = c_->slice(point);
  }
  materialize_symbols(*c_, result);
  result.metric = residual_metric(h, y, result.symbols);
  result.stats.search_seconds = search_timer.elapsed_seconds();
  return result;
}

}  // namespace sd
