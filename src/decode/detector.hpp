// Common detector interface.
//
// Every decoding scheme in the paper (ZF, MMSE, MRC, ML, the sphere-decoder
// family, and the FPGA pipeline simulation) implements this interface so the
// experiment harness can sweep them uniformly.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "decode/channel_prep.hpp"
#include "linalg/matrix.hpp"
#include "mimo/constellation.hpp"

namespace sd::obs {
class CounterRegistry;
}

namespace sd {

/// Work counters recorded during one decode. These are exact algorithmic
/// counts (not estimates); the device timing models convert them to time.
struct DecodeStats {
  std::uint64_t nodes_expanded = 0;   ///< tree nodes popped and branched
  std::uint64_t nodes_generated = 0;  ///< children created (paper phase 1)
  std::uint64_t nodes_pruned = 0;     ///< children discarded by the radius test
  std::uint64_t leaves_reached = 0;   ///< full-depth candidates evaluated
  std::uint64_t radius_updates = 0;   ///< times the sphere radius shrank
  std::uint64_t gemm_calls = 0;       ///< batched evaluation GEMMs issued
  std::uint64_t flops = 0;            ///< real FLOPs in evaluation GEMMs
  std::uint64_t sort_ops = 0;         ///< comparisons spent ordering children
  std::uint64_t bytes_touched = 0;    ///< evaluation operand traffic (bytes)
  std::uint64_t tree_levels = 0;      ///< levels processed (BFS) or max depth
  std::uint64_t peak_list_size = 0;   ///< high-water mark of the open list
  // Fixed-point datapath counters (zero on float decodes): how hard the
  // int16/int32 quantized path leaned on its saturation semantics.
  std::uint64_t quant_saturations = 0;  ///< int16 clamps (targets + requant)
  std::uint64_t quant_overflows = 0;    ///< int32 PD / radius saturations
  std::uint64_t quant_requants = 0;     ///< between-level Q(2f)->Q(f) narrowings
  std::uint64_t quant_fallbacks = 0;    ///< frames re-run on the float path
  // Neumann-series MMSE counters (zero for every other detector): how the
  // approximate-inversion tier resolved each frame.
  std::uint64_t neumann_terms = 0;      ///< Jacobi/Neumann series terms applied
  std::uint64_t neumann_exact_solves = 0;  ///< exact Cholesky solves (k=0 or fallback)
  std::uint64_t neumann_fallbacks = 0;  ///< series residual exceeded tol -> exact re-solve
  bool node_budget_hit = false;       ///< search stopped by the node budget
  double preprocess_seconds = 0.0;    ///< measured QR / equalizer setup time
  double search_seconds = 0.0;        ///< measured search/slicing time

  /// Pours a snapshot into the unified counter registry (src/obs) under
  /// "<prefix>.<counter>" names, e.g. "decode.nodes_expanded".
  void export_counters(obs::CounterRegistry& registry,
                       std::string_view prefix = "decode") const;
};

/// Output of one decode: hard decisions plus the achieved metric and stats.
struct DecodeResult {
  std::vector<index_t> indices;  ///< detected symbol index per transmit antenna
  CVec symbols;                  ///< corresponding constellation points
  double metric = std::numeric_limits<double>::infinity();  ///< ||y - H s||^2
  DecodeStats stats;

  /// Returns the result to its default state while KEEPING vector capacity,
  /// so decode_into() can recycle a caller-owned result across frames.
  void reset() {
    indices.clear();
    symbols.clear();
    metric = std::numeric_limits<double>::infinity();
    stats = DecodeStats{};
  }
};

/// Abstract detector. decode() is safe to call repeatedly with different
/// channels, but an instance may own reusable search scratch
/// (decode/decode_scratch.hpp), so a single instance must NOT be driven from
/// multiple threads concurrently — clone one per thread, as the serve and
/// dispatch runtimes do per lane.
class Detector {
 public:
  virtual ~Detector() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Detects the transmitted vector from the received y (length N) given the
  /// channel estimate h (N x M) and noise variance sigma2.
  [[nodiscard]] virtual DecodeResult decode(const CMat& h,
                                            std::span<const cplx> y,
                                            double sigma2) = 0;

  /// Allocation-aware decode: writes into `out`, reusing its capacity (the
  /// caller need not reset() it first). The base implementation forwards to
  /// decode(); detectors with internal scratch override this as the primary
  /// entry point and implement decode() as a wrapper, which together with the
  /// scratch reuse makes their steady-state decodes heap-allocation-free.
  /// Results are bitwise-identical to decode() either way.
  virtual void decode_into(const CMat& h, std::span<const cplx> y,
                           double sigma2, DecodeResult& out);

  // ---- Two-phase (channel-split) decoding ----------------------------------
  //
  // decode_into(h, y, ...) re-factors h on every call even when consecutive
  // frames share the channel. The two-phase API splits that cost: preprocess()
  // builds the channel-only factorization once (directly or via a
  // ChannelPrepCache), and decode_with() runs the per-frame remainder (ybar +
  // search). decode_with(preprocess(handle), y, ...) is bitwise-identical to
  // decode_into(handle.matrix(), y, ...) — same factorization code, same H
  // bytes, same search. See DESIGN.md §12.

  /// Which channel-only factorization this detector can reuse. kNone means
  /// the detector has no cacheable phase; decode_with() then degrades to
  /// decode_into() on the handle's matrix.
  [[nodiscard]] virtual PrepKind prep_kind() const noexcept {
    return PrepKind::kNone;
  }

  /// Builds the channel-only preprocessing for this detector. Callers that
  /// serve coherent traffic should prefer ChannelPrepCache::get_or_build with
  /// this detector's prep_kind() so coherent frames share one factorization.
  [[nodiscard]] std::shared_ptr<const PreprocessedChannel> preprocess(
      const ChannelHandle& channel) const {
    return build_channel_prep(channel, prep_kind());
  }

  /// Decodes one frame against an already-factored channel. `prep` must have
  /// been built for this detector's prep_kind() (a mismatched or kNone prep
  /// falls back to the one-shot path). Bit-identical to decode_into().
  virtual void decode_with(const PreprocessedChannel& prep,
                           std::span<const cplx> y, double sigma2,
                           DecodeResult& out);

  /// One frame of a fused multi-frame batch.
  struct BatchItem {
    std::span<const cplx> y;
    double sigma2 = 0.0;
    DecodeResult* out = nullptr;
  };

  /// Decodes B frames sharing one prepared channel. The base implementation
  /// loops decode_with(); detectors with a fused level-GEMM path (BFS)
  /// override it to stack the frames' frontier columns into one wide product
  /// per level. Every override is REQUIRED to produce per-frame results
  /// bit-identical to sequential decode_with() calls (pinned by
  /// tests/test_coherent_batch.cpp).
  virtual void decode_batch_with(const PreprocessedChannel& prep,
                                 std::span<BatchItem> items);

  /// One frame of a cross-channel ("wide") batch: each frame carries its OWN
  /// prepared channel. The prep pointers must outlive the call; frames may
  /// freely share a prep.
  struct WideItem {
    const PreprocessedChannel* prep = nullptr;
    std::span<const cplx> y;
    double sigma2 = 0.0;
    DecodeResult* out = nullptr;
  };

  /// Decodes B frames with per-frame channels. The base implementation loops
  /// decode_with(); the BFS detector overrides it to pack the frames'
  /// frontier columns — across DIFFERENT channels — into one block-diagonal
  /// level product (DESIGN.md §14). Every override is REQUIRED to produce
  /// per-frame results bit-identical to sequential decode_with() calls.
  virtual void decode_wide(std::span<WideItem> items);
};

/// Convenience: computes ||y - H s||^2 for a candidate, used by detectors to
/// report the achieved metric and by tests as an oracle.
[[nodiscard]] double residual_metric(const CMat& h, std::span<const cplx> y,
                                     std::span<const cplx> s);

/// Fills result.symbols from result.indices using the constellation.
void materialize_symbols(const Constellation& c, DecodeResult& result);

}  // namespace sd
