// Per-detector reusable search scratch.
//
// The tree-search decoders used to heap-construct their working state — the
// level GEMM operands (a_block / s_mat / z), the frontier and open-list
// vectors, the Meta State Table, and the preprocessing factorization — fresh
// on every decode() and, for the matrices, on every tree level. At serving
// rates (src/serve, src/dispatch) that allocator traffic dominated the short
// decodes. DecodeScratch gathers all of it into one object owned by the
// detector instance: each buffer grows to its high-water mark once and is
// then recycled across levels and across decode_into() calls, making
// steady-state decodes heap-allocation-free (pinned by
// tests/test_alloc_free.cpp).
//
// Reuse changes NO result bits: matrices reshaped via Mat::reshape are fully
// overwritten before being read (the beta == 0 GEMM overwrite contract plus
// explicit zero fills for a_block's lower triangle), and vectors are
// clear()/assign()ed exactly where the old code constructed them.
//
// Ownership/threading: a DecodeScratch — and therefore a detector holding
// one — is single-threaded state. The serve/dispatch runtimes already clone
// one detector per lane; tests/test_decode_scratch.cpp exercises concurrent
// clones under TSan.
#pragma once

#include <optional>
#include <vector>

#include "decode/mst.hpp"
#include "decode/sphere_common.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"

namespace sd {

/// Open-list / frontier entry: MST node id plus its cached PD (so lazy
/// pruning needs no MST lookup). Shared by the Best-FS and BFS decoders.
struct ScratchNode {
  NodeId id;
  real pd;
};

/// A freshly generated child before it is committed to the MST.
struct ScratchChild {
  index_t symbol;
  real pd;
};

struct DecodeScratch {
  // Preprocessing: recycled QR factorization + the Preprocessed it fills.
  PreprocessScratch prep;
  Preprocessed pre;

  // Level-wide evaluation GEMM operands and the kernel pack workspace.
  CMat a_block;
  CMat s_mat;
  CMat z;
  GemmWorkspace gemm_ws;

  // Tree traversal state.
  std::vector<ScratchNode> frontier;  ///< BFS current level
  std::vector<ScratchNode> next;      ///< BFS next level
  TreeList<ScratchNode> open;         ///< Best-FS open list
  std::vector<ScratchChild> children;
  std::vector<ScratchChild> survivors;
  std::vector<ScratchNode> batch;
  std::vector<index_t> path;
  std::vector<index_t> best_path;
  std::vector<index_t> layered;

  /// The Meta State Table, rebuilt only when the tree shape (level count or
  /// per-level capacity) changes; otherwise the existing table — whose
  /// partitions retain their capacity across reset() — is returned. The
  /// caller still calls reset() per search attempt, exactly as before.
  MetaStateTable& mst(index_t levels, usize capacity_per_level) {
    if (!mst_ || mst_->levels() != levels ||
        mst_->capacity_per_level() != capacity_per_level) {
      mst_.emplace(levels, capacity_per_level);
    }
    return *mst_;
  }

 private:
  std::optional<MetaStateTable> mst_;
};

}  // namespace sd
