// Machinery shared by the sphere-decoder family: QR preprocessing, radius
// policies, search options, and the sorted tree-list open structure from the
// paper's Fig. 3.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "decode/detector.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"

namespace sd {

/// How the initial sphere radius r is chosen (paper Eq. 3: user-set, then
/// tightened at run time whenever a leaf improves on it).
enum class RadiusPolicy : std::uint8_t {
  kInfinite,   ///< start unbounded; the first leaf (Babai point) sets r
  kNoiseScaled ///< r^2 = radius_alpha * sigma^2 * N (the heuristic used by
               ///< the BFS/GPU variant, which needs a finite radius to prune)
};

/// Shape of the per-level / per-expansion evaluation GEMM.
///
/// The paper's formulation multiplies the FULL trailing k x k block of R by
/// the tree-state matrix even though only row 0 of the product carries new
/// information (the PD increment); the redundant rows are the regularity that
/// makes the kernel accelerator-friendly, and the flop counts they generate
/// feed the device timing models. kRow0 computes just that row — a 1 x k by
/// k x cols product — cutting the arithmetic by a factor of k while producing
/// bit-identical PDs (each output element's reduction is unchanged; see
/// DESIGN.md). It is an opt-in CPU fast path: default stays kFull so the
/// paper-fidelity flop accounting and every golden constant are untouched.
enum class LevelGemm : std::uint8_t {
  kFull,  ///< full k x k trailing block product (paper-faithful; default)
  kRow0   ///< only row 0 of the product (CPU fast path, same PDs bit-for-bit)
};

/// Options common to all tree-search detectors.
struct SdOptions {
  RadiusPolicy radius_policy = RadiusPolicy::kInfinite;
  double radius_alpha = 2.0;      ///< multiplier for kNoiseScaled
  std::uint64_t max_nodes =
      std::numeric_limits<std::uint64_t>::max();  ///< expansion budget
  bool sorted_qr = false;         ///< use SQRD layer ordering (ablation)
  bool gemm_eval = true;          ///< batched GEMM child evaluation (paper)
                                  ///< vs scalar incremental (ablation)
  LevelGemm level_gemm = LevelGemm::kFull;  ///< evaluation GEMM shape
};

/// Result of detection preprocessing: the triangular system ybar = R s.
struct Preprocessed {
  CMat r;                      ///< M x M upper triangular
  CVec ybar;                   ///< Q^H y, first M entries
  std::vector<index_t> perm;   ///< layer -> antenna mapping (empty = identity)
  double seconds = 0.0;        ///< measured preprocessing time
};

/// Reusable preprocessing workspace: the Householder factorization object
/// (which recycles its internal panels across factor() calls) plus the
/// length-N apply_qh intermediate.
struct PreprocessScratch {
  QrFactorization qr;
  CVec work;
};

/// Runs QR (plain Householder or SQRD) and computes ybar.
[[nodiscard]] Preprocessed preprocess(const CMat& h, std::span<const cplx> y,
                                      bool sorted_qr);

/// Allocation-aware preprocess: writes into `pre`, reusing its capacity and
/// the scratch. The Householder path is heap-allocation-free in steady state
/// (after warm-up at a given problem shape); the sorted-QR ablation path
/// still allocates inside qr_sorted(). Bitwise-identical to preprocess().
void preprocess_into(const CMat& h, std::span<const cplx> y, bool sorted_qr,
                     PreprocessScratch& scratch, Preprocessed& pre);

/// Per-frame half of the two-phase split: derives ybar (and copies R / the
/// permutation views) from an already-factored channel. `prep.kind` must be
/// kQrPlain or kQrSorted. Bitwise-identical to preprocess_into() on the same
/// H because the factorization bits come from the identical factorization
/// code — only WHEN they were computed differs. pre.seconds records just the
/// per-frame work (the amortized channel cost lives in prep.build_seconds).
/// Heap-allocation-free in steady state for both kinds (the sorted path's
/// qr_sorted() allocations happened at prep build time).
void preprocess_with_channel(const PreprocessedChannel& prep,
                             std::span<const cplx> y,
                             PreprocessScratch& scratch, Preprocessed& pre);

/// Converts layer-ordered detected indices back to antenna order.
[[nodiscard]] std::vector<index_t> to_antenna_order(
    const Preprocessed& pre, const std::vector<index_t>& layered);

/// Allocation-aware variant of to_antenna_order; `out` capacity is reused.
void to_antenna_order_into(const Preprocessed& pre,
                           const std::vector<index_t>& layered,
                           std::vector<index_t>& out);

/// Initial squared radius for the configured policy.
[[nodiscard]] double initial_radius_sq(const SdOptions& opts, double sigma2,
                                       index_t num_rx);

/// The paper's tree-list structure (Fig. 3): an open list where each batch of
/// children is inserted in PD-sorted order and nodes are popped LIFO, which
/// yields depth-first descent that always follows the best child first
/// (the Best-FS strategy adopted from Geosphere).
template <typename Entry>
class TreeList {
 public:
  /// Pushes a batch of sibling entries; `entries` must already be sorted by
  /// ascending PD. They are pushed in reverse so the best sibling pops first.
  void push_sorted_batch(std::span<const Entry> entries) {
    for (usize i = entries.size(); i-- > 0;) {
      stack_.push_back(entries[i]);
    }
    peak_ = std::max(peak_, stack_.size());
  }

  [[nodiscard]] bool empty() const noexcept { return stack_.empty(); }
  [[nodiscard]] usize size() const noexcept { return stack_.size(); }
  [[nodiscard]] usize peak_size() const noexcept { return peak_; }

  [[nodiscard]] Entry pop() {
    Entry e = stack_.back();
    stack_.pop_back();
    return e;
  }

  void clear() noexcept {
    stack_.clear();
    peak_ = 0;
  }

 private:
  std::vector<Entry> stack_;
  usize peak_ = 0;
};

}  // namespace sd
