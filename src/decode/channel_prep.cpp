#include "decode/channel_prep.hpp"

#include <algorithm>
#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "linalg/ordering.hpp"
#include "linalg/solve.hpp"
#include "obs/trace.hpp"

namespace sd {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, const void* data, usize bytes) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (usize i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Bitwise element equality — stricter than operator== (which would treat
/// -0.0 and +0.0 as equal even though their factorizations may differ in
/// bits). The cache's correctness contract is bit-exact reuse, so the
/// verification must be bit-exact too.
bool same_content(const CMat& a, const CMat& b) noexcept {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto fa = a.flat();
  const auto fb = b.flat();
  return std::memcmp(fa.data(), fb.data(), fa.size() * sizeof(cplx)) == 0;
}

}  // namespace

std::uint64_t channel_fingerprint(const CMat& h) noexcept {
  std::uint64_t fp = kFnvOffset;
  const std::uint64_t rows = static_cast<std::uint64_t>(h.rows());
  const std::uint64_t cols = static_cast<std::uint64_t>(h.cols());
  fp = fnv1a(fp, &rows, sizeof(rows));
  fp = fnv1a(fp, &cols, sizeof(cols));
  const auto flat = h.flat();
  fp = fnv1a(fp, flat.data(), flat.size() * sizeof(cplx));
  return fp;
}

ChannelHandle::ChannelHandle(CMat h)
    : h_(std::make_shared<const CMat>(std::move(h))) {
  fp_ = channel_fingerprint(*h_);
}

ChannelHandle::ChannelHandle(CMat h, std::uint64_t fingerprint)
    : h_(std::make_shared<const CMat>(std::move(h))), fp_(fingerprint) {}

const CMat& ChannelHandle::matrix() const {
  SD_CHECK(h_ != nullptr, "empty ChannelHandle");
  return *h_;
}

std::string_view prep_kind_name(PrepKind kind) noexcept {
  switch (kind) {
    case PrepKind::kNone: return "none";
    case PrepKind::kQrPlain: return "qr";
    case PrepKind::kQrSorted: return "sqrd";
    case PrepKind::kZf: return "zf";
    case PrepKind::kQrPlainQuant: return "qr-i16";
    case PrepKind::kQrSortedQuant: return "sqrd-i16";
    case PrepKind::kGramMmse: return "gram";
  }
  return "?";
}

std::shared_ptr<const PreprocessedChannel> build_channel_prep(
    const ChannelHandle& channel, PrepKind kind) {
  SD_TRACE_SPAN("decode.prep.build");
  SD_CHECK(kind != PrepKind::kNone, "cannot build a kNone channel prep");
  auto prep = std::make_shared<PreprocessedChannel>();
  prep->channel = channel;
  prep->kind = kind;
  const CMat& h = channel.matrix();
  Timer timer;
  switch (kind) {
    case PrepKind::kQrPlain:
      prep->qr.factor(h);
      break;
    case PrepKind::kQrSorted: {
      SortedQr sq = qr_sorted(h);
      prep->q = std::move(sq.q);
      prep->r = std::move(sq.r);
      prep->perm = std::move(sq.perm);
      break;
    }
    case PrepKind::kZf:
      prep->w = zf_equalizer(h);
      break;
    // The quant kinds run the IDENTICAL float factorization as their float
    // counterpart (so the per-frame ybar path and its bits are shared), then
    // calibrate + quantize R. Same code as the uncached decode_into path, so
    // cached and uncached quantized decodes agree bit-for-bit.
    case PrepKind::kQrPlainQuant:
      prep->qr.factor(h);
      quant::quantize_channel_prep(prep->qr.r(), prep->qprep);
      break;
    case PrepKind::kQrSortedQuant: {
      SortedQr sq = qr_sorted(h);
      prep->q = std::move(sq.q);
      prep->r = std::move(sq.r);
      prep->perm = std::move(sq.perm);
      quant::quantize_channel_prep(prep->r, prep->qprep);
      break;
    }
    case PrepKind::kGramMmse:
      prep->g = gram(h);
      break;
    case PrepKind::kNone:
      break;
  }
  prep->build_seconds = timer.elapsed_seconds();
  return prep;
}

struct ChannelPrepCache::Shard {
  struct Entry {
    std::uint64_t fp = 0;
    PrepKind kind = PrepKind::kNone;
    std::shared_ptr<const PreprocessedChannel> prep;
  };
  mutable std::mutex mu;
  std::list<Entry> lru;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
  Stats stats;
};

namespace {

/// Shard-map key: fingerprint mixed with the kind so one channel's QR and ZF
/// preps occupy distinct slots. The mix keeps a key of 0 possible only with
/// astronomically small probability; correctness never depends on the key
/// alone — hits verify kind and matrix content.
std::uint64_t entry_key(std::uint64_t fp, PrepKind kind) noexcept {
  return fp ^ (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(kind) + 1));
}

}  // namespace

ChannelPrepCache::~ChannelPrepCache() = default;

ChannelPrepCache::ChannelPrepCache(Options options) : opts_(options) {
  SD_CHECK(opts_.capacity >= 1, "prep cache capacity must be at least 1");
  SD_CHECK(opts_.shards >= 1, "prep cache needs at least one shard");
  if (opts_.shards > opts_.capacity) opts_.shards = opts_.capacity;
  shards_.reserve(opts_.shards);
  for (usize s = 0; s < opts_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ChannelPrepCache::Shard& ChannelPrepCache::shard_for(std::uint64_t fp) const {
  return *shards_[static_cast<usize>(fp % shards_.size())];
}

std::shared_ptr<const PreprocessedChannel> ChannelPrepCache::get_or_build(
    const ChannelHandle& channel, PrepKind kind, bool* hit) {
  SD_CHECK(channel.valid(), "prep cache lookup on an empty ChannelHandle");
  SD_CHECK(kind != PrepKind::kNone, "prep cache lookup with kind == kNone");
  const std::uint64_t key = entry_key(channel.fingerprint(), kind);
  Shard& shard = shard_for(channel.fingerprint());
  const usize shard_capacity =
      std::max<usize>(1, opts_.capacity / shards_.size());

  bool collision = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      const Shard::Entry& e = *it->second;
      // Verify the hit: fingerprints can collide, and the test-only
      // explicit-fingerprint constructor makes them collide on purpose.
      // The shared_ptr identity check is the O(1) fast path for the common
      // case of frames sharing one handle within a coherence block.
      const bool same =
          e.kind == kind &&
          (e.prep->channel.same_storage(channel) ||
           same_content(e.prep->channel.matrix(), channel.matrix()));
      if (same) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        ++shard.stats.hits;
        if (hit != nullptr) *hit = true;
        return it->second->prep;
      }
      collision = true;
    }
  }

  // Miss (or collision): build outside the lock. A racing builder on the
  // same key produces bit-identical output, so whichever insert lands last
  // simply replaces an equivalent entry.
  std::shared_ptr<const PreprocessedChannel> prep =
      build_channel_prep(channel, kind);

  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.stats.misses;
  if (collision) ++shard.stats.collisions;
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Replace in place (collision, or a concurrent builder got here first).
    it->second->prep = prep;
    it->second->fp = channel.fingerprint();
    it->second->kind = kind;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    if (shard.lru.size() >= shard_capacity) {
      const Shard::Entry& victim = shard.lru.back();
      shard.index.erase(entry_key(victim.fp, victim.kind));
      shard.lru.pop_back();
      ++shard.stats.evictions;
    }
    shard.lru.push_front(
        Shard::Entry{channel.fingerprint(), kind, prep});
    shard.index.emplace(key, shard.lru.begin());
  }
  if (hit != nullptr) *hit = false;
  return prep;
}

ChannelPrepCache::Stats ChannelPrepCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.evictions += shard->stats.evictions;
    total.collisions += shard->stats.collisions;
  }
  return total;
}

void ChannelPrepCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace sd
