#include "decode/sd_gemm_bfs.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "linalg/gemm.hpp"
#include "obs/trace.hpp"

namespace sd {

/// Per-frame state for the fused lockstep search. Each frame keeps its own
/// Meta State Table, frontier, and triangular system (ybar AND R may differ
/// per frame — frames carry their own prep in the wide path), so NodeIds,
/// truncation cuts, and stats evolve exactly as in a solo decode.
struct SdGemmBfsDetector::FusedFrame {
  PreprocessScratch prep;
  Preprocessed pre;
  std::optional<MetaStateTable> mst_storage;
  std::vector<ScratchNode> frontier;
  std::vector<ScratchNode> next;
  std::vector<index_t> path;
  std::vector<index_t> best_path;
  std::vector<index_t> layered;
  const PreprocessedChannel* chan = nullptr;  ///< this frame's own prep
  DecodeResult* out = nullptr;
  double radius_sq = 0.0;
  usize block = 0;       ///< index of this frame's A block at the level
  bool active = false;   ///< still in the fused lockstep
  bool restart = false;  ///< peeled off; re-run via sequential decode_with
  bool truncated = false;

  MetaStateTable& mst(index_t levels, usize capacity_per_level) {
    if (!mst_storage || mst_storage->levels() != levels ||
        mst_storage->capacity_per_level() != capacity_per_level) {
      mst_storage.emplace(levels, capacity_per_level);
    }
    return *mst_storage;
  }
};

SdGemmBfsDetector::SdGemmBfsDetector(const Constellation& constellation,
                                     BfsOptions options)
    : c_(&constellation), opts_(options) {
  // BFS cannot prune without a finite radius; an unbounded sphere would make
  // the frontier exactly |Omega|^level, i.e. exhaustive ML.
  if (opts_.base.radius_policy == RadiusPolicy::kInfinite) {
    opts_.base.radius_policy = RadiusPolicy::kNoiseScaled;
  }
}

SdGemmBfsDetector::~SdGemmBfsDetector() = default;

DecodeResult SdGemmBfsDetector::decode(const CMat& h, std::span<const cplx> y,
                                       double sigma2) {
  DecodeResult result;
  decode_into(h, y, sigma2, result);
  return result;
}

void SdGemmBfsDetector::decode_into(const CMat& h, std::span<const cplx> y,
                                    double sigma2, DecodeResult& out) {
  SD_TRACE_SPAN("decode");
  out.reset();
  preprocess_into(h, y, opts_.base.sorted_qr, scratch_.prep, scratch_.pre);
  out.stats.preprocess_seconds = scratch_.pre.seconds;
  search(scratch_.pre, sigma2, out);
  materialize_symbols(*c_, out);
}

void SdGemmBfsDetector::decode_with(const PreprocessedChannel& prep,
                                    std::span<const cplx> y, double sigma2,
                                    DecodeResult& out) {
  if (prep.kind != prep_kind()) {
    Detector::decode_with(prep, y, sigma2, out);
    return;
  }
  SD_TRACE_SPAN("decode");
  out.reset();
  preprocess_with_channel(prep, y, scratch_.prep, scratch_.pre);
  out.stats.preprocess_seconds = scratch_.pre.seconds;
  search(scratch_.pre, sigma2, out);
  materialize_symbols(*c_, out);
}

void SdGemmBfsDetector::decode_batch_with(const PreprocessedChannel& prep,
                                          std::span<BatchItem> items) {
  if (items.size() <= 1 || prep.kind != prep_kind()) {
    Detector::decode_batch_with(prep, items);
    return;
  }
  // Shared-prep batches are the degenerate wide batch: every frame points at
  // the same prep, so each level groups into a single A block.
  wide_items_.clear();
  for (BatchItem& item : items) {
    SD_CHECK(item.out != nullptr, "batch item missing an output slot");
    wide_items_.push_back(WideItem{&prep, item.y, item.sigma2, item.out});
  }
  decode_wide(wide_items_);
}

void SdGemmBfsDetector::decode_wide(std::span<WideItem> items) {
  if (items.size() <= 1) {
    Detector::decode_wide(items);  // solo decode_with sets truncated_
    return;
  }
  SD_TRACE_SPAN("decode.batch");
  const index_t p = c_->order();
  const bool row0 = opts_.base.level_gemm == LevelGemm::kRow0;
  // Cap on the stacked tree-state width: the widest operand a SOLO decode can
  // legally form (a full frontier's children). Exceeding it peels frames off
  // the fused pass — from the END of the batch, deterministically — so fused
  // memory never exceeds the sequential worst case times one.
  const usize fused_col_budget =
      opts_.max_frontier * static_cast<usize>(p);

  while (fused_.size() < items.size()) {
    fused_.push_back(std::make_unique<FusedFrame>());
  }

  // Per-frame setup: derive each frame's triangular system from ITS OWN prep
  // and plant the virtual root, mirroring the start of a solo decode_with()
  // exactly. Frames whose prep kind doesn't match (they need the one-shot
  // fallback) or whose dimension differs from the batch's first lockstep
  // frame (levels would not line up) peel to the sequential path up front.
  index_t m = -1;
  for (usize i = 0; i < items.size(); ++i) {
    FusedFrame& fr = *fused_[i];
    WideItem& item = items[i];
    SD_CHECK(item.prep != nullptr, "wide item missing a prepared channel");
    SD_CHECK(item.out != nullptr, "wide item missing an output slot");
    fr.chan = item.prep;
    fr.out = item.out;
    fr.truncated = false;
    const index_t mi = item.prep->channel.matrix().cols();
    if (item.prep->kind != prep_kind() || (m >= 0 && mi != m)) {
      fr.active = false;
      fr.restart = true;
      continue;
    }
    m = mi;
    item.out->reset();
    preprocess_with_channel(*item.prep, item.y, fr.prep, fr.pre);
    item.out->stats.preprocess_seconds = fr.pre.seconds;
    item.out->stats.tree_levels = static_cast<std::uint64_t>(m);
    fr.radius_sq = initial_radius_sq(opts_.base, item.sigma2, m);
    fr.active = true;
    fr.restart = false;
    fr.mst(m, 4096).reset();
    fr.frontier.clear();
    fr.frontier.push_back(ScratchNode{kRootId, real{0}});
    fr.path.assign(static_cast<usize>(m), 0);
    fr.best_path.assign(static_cast<usize>(m), 0);
  }

  Timer timer;
  for (index_t depth = 0; depth < m; ++depth) {
    // A frame whose frontier emptied needs the radius-doubling retry; peel
    // it off (its partial stats are discarded with out.reset() below).
    usize active_count = 0;
    usize total_cols = 0;
    for (usize i = 0; i < items.size(); ++i) {
      FusedFrame& fr = *fused_[i];
      if (!fr.active) continue;
      if (fr.frontier.empty()) {
        fr.active = false;
        fr.restart = true;
        continue;
      }
      ++active_count;
      total_cols += fr.frontier.size() * static_cast<usize>(p);
    }
    for (usize i = items.size();
         i-- > 0 && total_cols > fused_col_budget && active_count > 1;) {
      FusedFrame& fr = *fused_[i];
      if (!fr.active) continue;
      total_cols -= fr.frontier.size() * static_cast<usize>(p);
      fr.active = false;
      fr.restart = true;
      --active_count;
    }
    if (active_count == 0) break;

    const index_t a = m - 1 - depth;
    const index_t k = m - a;
    const index_t zr = row0 ? 1 : k;

    // Stacked A: one zr x k R row-block per DISTINCT prep among the active
    // frames, side by side in first-appearance order. Same-channel frames
    // share a block (coherent traffic degenerates to the single-block case);
    // i.i.d. traffic gets one block per frame.
    block_keys_.clear();
    block_pres_.clear();
    for (usize i = 0; i < items.size(); ++i) {
      FusedFrame& fr = *fused_[i];
      if (!fr.active) continue;
      usize g = 0;
      while (g < block_keys_.size() && block_keys_[g] != fr.chan) ++g;
      if (g == block_keys_.size()) {
        block_keys_.push_back(fr.chan);
        block_pres_.push_back(&fr.pre);
      }
      fr.block = g;
    }
    CMat& a_stack = scratch_.a_block;
    a_stack.reshape(zr, static_cast<index_t>(block_keys_.size()) * k);
    for (usize g = 0; g < block_keys_.size(); ++g) {
      const Preprocessed& gpre = *block_pres_[g];
      const index_t base = static_cast<index_t>(g) * k;
      for (index_t r2 = 0; r2 < zr; ++r2) {
        for (index_t t = 0; t < r2; ++t) a_stack(r2, base + t) = cplx{0, 0};
        for (index_t t = r2; t < k; ++t) {
          a_stack(r2, base + t) = gpre.r(a + r2, a + t);
        }
      }
    }

    // One stacked tree-state matrix: frame j's segment is exactly the S it
    // would build solo. Column independence of the GEMM kernels (DESIGN.md
    // §12/§14) makes each segment's product bit-identical to the solo
    // product against that frame's own A block.
    CMat& s_mat = scratch_.s_mat;
    s_mat.reshape(k, static_cast<index_t>(total_cols));
    groups_.clear();
    usize col_off = 0;
    for (usize i = 0; i < items.size(); ++i) {
      FusedFrame& fr = *fused_[i];
      if (!fr.active) continue;
      const usize f = fr.frontier.size();
      for (usize ni = 0; ni < f; ++ni) {
        if (fr.frontier[ni].id != kRootId) {
          fr.mst_storage->path_symbols(fr.frontier[ni].id, fr.path);
        }
        const index_t base_col =
            static_cast<index_t>(col_off + ni * static_cast<usize>(p));
        for (index_t c = 0; c < p; ++c) {
          s_mat(0, base_col + c) = c_->point(c);
        }
        for (index_t t = 1; t < k; ++t) {
          const cplx sym = c_->point(fr.path[static_cast<usize>(depth - t)]);
          for (index_t c = 0; c < p; ++c) {
            s_mat(t, base_col + c) = sym;
          }
        }
      }
      groups_.push_back(GemmGroup{static_cast<index_t>(fr.block) * k,
                                  static_cast<index_t>(col_off),
                                  static_cast<index_t>(f) * p});
      col_off += f * static_cast<usize>(p);
    }

    // ONE grouped block-diagonal product for the whole level, across all
    // channels — the cross-channel generalization of the single level GEMM.
    CMat& z = scratch_.z;
    z.reshape(zr, static_cast<index_t>(total_cols));
    gemm_grouped(cplx{1, 0}, a_stack, k, s_mat, cplx{0, 0}, z, groups_,
                 scratch_.gemm_ws);

    // Per-frame consume: prune / insert / truncate with the frame's own MST
    // and stats — the exact solo code over the frame's column segment. Stats
    // are charged as-if-solo (each frame "sees" its own k x (f*p) GEMM), so
    // fused and sequential DecodeStats match field for field.
    col_off = 0;
    for (usize i = 0; i < items.size(); ++i) {
      FusedFrame& fr = *fused_[i];
      if (!fr.active) continue;
      DecodeStats& stats = fr.out->stats;
      const usize f = fr.frontier.size();
      const index_t cols = static_cast<index_t>(f) * p;
      ++stats.gemm_calls;
      stats.flops += gemm_flops(zr, cols, k);
      stats.bytes_touched +=
          sizeof(cplx) * (static_cast<std::uint64_t>(zr) * k +
                          static_cast<std::uint64_t>(k) * cols +
                          static_cast<std::uint64_t>(zr) * cols);
      stats.nodes_expanded += f;
      stats.nodes_generated += static_cast<std::uint64_t>(cols);

      MetaStateTable& mst = *fr.mst_storage;
      const cplx target = fr.pre.ybar[static_cast<usize>(a)];
      fr.next.clear();
      for (usize ni = 0; ni < f; ++ni) {
        const index_t base_col =
            static_cast<index_t>(col_off + ni * static_cast<usize>(p));
        for (index_t c = 0; c < p; ++c) {
          const real pd =
              fr.frontier[ni].pd + norm2(target - z(0, base_col + c));
          if (static_cast<double>(pd) >= fr.radius_sq) {
            ++stats.nodes_pruned;
            continue;
          }
          const NodeId id =
              mst.insert(depth, MstNode{fr.frontier[ni].id, c, pd});
          fr.next.push_back(ScratchNode{id, pd});
        }
      }
      if (fr.next.size() > opts_.max_frontier) {
        fr.truncated = true;
        std::partial_sort(
            fr.next.begin(),
            fr.next.begin() + static_cast<std::ptrdiff_t>(opts_.max_frontier),
            fr.next.end(), [](const ScratchNode& x, const ScratchNode& y2) {
              return x.pd < y2.pd || (x.pd == y2.pd && x.id < y2.id);
            });
        stats.nodes_pruned += fr.next.size() - opts_.max_frontier;
        fr.next.resize(opts_.max_frontier);
      }
      fr.frontier.swap(fr.next);
      stats.peak_list_size = std::max<std::uint64_t>(stats.peak_list_size,
                                                     fr.frontier.size());
      col_off += f * static_cast<usize>(p);
    }
  }
  const double fused_seconds = timer.elapsed_seconds();

  // Harvest solved frames; peel off the rest.
  for (usize i = 0; i < items.size(); ++i) {
    FusedFrame& fr = *fused_[i];
    if (!fr.active || fr.frontier.empty()) {
      fr.restart = true;
      continue;
    }
    const auto best_it = std::min_element(
        fr.frontier.begin(), fr.frontier.end(),
        [](const ScratchNode& x, const ScratchNode& y2) {
          return x.pd < y2.pd;
        });
    fr.out->stats.leaves_reached += fr.frontier.size();
    ++fr.out->stats.radius_updates;
    const double best_pd = static_cast<double>(best_it->pd);
    fr.mst_storage->path_symbols(best_it->id, fr.best_path);
    fr.layered.resize(static_cast<usize>(m));
    for (index_t d = 0; d < m; ++d) {
      fr.layered[static_cast<usize>(m - 1 - d)] =
          fr.best_path[static_cast<usize>(d)];
    }
    to_antenna_order_into(fr.pre, fr.layered, fr.out->indices);
    fr.out->metric = best_pd;
    // Wall time is genuinely shared; each frame is charged the fused pass
    // (the *_seconds fields are measurements, not part of the bit-identity
    // contract — tests compare everything else).
    fr.out->stats.search_seconds = fused_seconds;
    materialize_symbols(*c_, *fr.out);
  }

  // Sequential fallback for peeled frames (kind/dimension mismatches,
  // empty-sphere retries, and budget demotions): a full solo decode against
  // the frame's OWN prep reproduces the exact sequential bits AND stats,
  // because decode_with() resets the result before re-charging.
  for (usize i = 0; i < items.size(); ++i) {
    FusedFrame& fr = *fused_[i];
    if (!fr.restart) continue;
    decode_with(*fr.chan, items[i].y, items[i].sigma2, *items[i].out);
    fr.truncated = truncated_;
  }
  // Match a sequential loop's view: report the batch's LAST frame.
  truncated_ = fused_[items.size() - 1]->truncated;
}

void SdGemmBfsDetector::search(const Preprocessed& pre, double sigma2,
                               DecodeResult& result) {
  SD_TRACE_SPAN("decode.search");
  const index_t m = pre.r.rows();
  const index_t p = c_->order();
  result.stats.tree_levels = static_cast<std::uint64_t>(m);
  truncated_ = false;

  Timer timer;

  MetaStateTable& mst = scratch_.mst(m, 4096);
  double radius_sq = initial_radius_sq(opts_.base, sigma2, m);

  const bool row0 = opts_.base.level_gemm == LevelGemm::kRow0;

  std::vector<ScratchNode>& frontier = scratch_.frontier;
  std::vector<ScratchNode>& next = scratch_.next;
  std::vector<index_t>& path = scratch_.path;
  path.assign(static_cast<usize>(m), 0);

  bool solved = false;
  std::vector<index_t>& best_path = scratch_.best_path;
  best_path.assign(static_cast<usize>(m), 0);
  double best_pd = std::numeric_limits<double>::infinity();

  for (int attempt = 0; !solved; ++attempt) {
    mst.reset();
    frontier.clear();
    frontier.push_back(ScratchNode{kRootId, real{0}});

    for (index_t depth = 0; depth < m && !frontier.empty(); ++depth) {
      const index_t a = m - 1 - depth;
      const index_t k = m - a;  // R row-block length = depth + 1
      const usize f = frontier.size();
      const index_t cols = static_cast<index_t>(f) * p;

      // One level = one GEMM: z = R[a:m, a:m] * S, where S packs the
      // candidate tree-state blocks of every frontier node's every child —
      // the large level-wide matrix product that [1] maps onto the GPU.
      // Row 0 carries the new level's contribution (the PD increment).
      //
      // Operands live in detector-owned scratch: reshape() keeps the
      // high-water allocation, a_block's full rows are (re)written including
      // the explicit lower-triangle zeros reuse no longer provides, and
      // s_mat / z are fully overwritten (z by the beta == 0 GEMM contract).
      // In LevelGemm::kRow0 mode only row 0 of the product is formed — a
      // 1 x k by k x cols GEMM — which is bit-identical to row 0 of the full
      // product and what the PD loop below actually reads; flop/byte charges
      // then reflect the smaller product.
      const index_t zr = row0 ? 1 : k;
      CMat& a_block = scratch_.a_block;
      a_block.reshape(zr, k);
      for (index_t r2 = 0; r2 < zr; ++r2) {
        for (index_t t = 0; t < r2; ++t) a_block(r2, t) = cplx{0, 0};
        for (index_t t = r2; t < k; ++t) {
          a_block(r2, t) = pre.r(a + r2, a + t);
        }
      }
      CMat& s_mat = scratch_.s_mat;
      s_mat.reshape(k, cols);
      for (usize ni = 0; ni < f; ++ni) {
        if (frontier[ni].id != kRootId) {
          mst.path_symbols(frontier[ni].id, path);
        }
        const index_t base_col = static_cast<index_t>(ni) * p;
        for (index_t c = 0; c < p; ++c) {
          s_mat(0, base_col + c) = c_->point(c);
        }
        for (index_t t = 1; t < k; ++t) {
          const cplx sym = c_->point(path[static_cast<usize>(depth - t)]);
          for (index_t c = 0; c < p; ++c) {
            s_mat(t, base_col + c) = sym;
          }
        }
      }
      CMat& z = scratch_.z;
      z.reshape(zr, cols);
      gemm(Op::kNone, cplx{1, 0}, a_block, s_mat, cplx{0, 0}, z,
           scratch_.gemm_ws);
      ++result.stats.gemm_calls;
      result.stats.flops += gemm_flops(zr, cols, k);
      result.stats.bytes_touched +=
          sizeof(cplx) * (static_cast<std::uint64_t>(zr) * k +
                          static_cast<std::uint64_t>(k) * cols +
                          static_cast<std::uint64_t>(zr) * cols);
      result.stats.nodes_expanded += f;
      result.stats.nodes_generated += static_cast<std::uint64_t>(cols);

      const cplx target = pre.ybar[static_cast<usize>(a)];
      next.clear();
      for (usize ni = 0; ni < f; ++ni) {
        const index_t base_col = static_cast<index_t>(ni) * p;
        for (index_t c = 0; c < p; ++c) {
          const real pd =
              frontier[ni].pd + norm2(target - z(0, base_col + c));
          if (static_cast<double>(pd) >= radius_sq) {
            ++result.stats.nodes_pruned;
            continue;
          }
          const NodeId id =
              mst.insert(depth, MstNode{frontier[ni].id, c, pd});
          next.push_back(ScratchNode{id, pd});
        }
      }

      if (next.size() > opts_.max_frontier) {
        // Memory guard: keep the best max_frontier nodes. This is the
        // BER-costing heuristic GPU implementations fall back on.
        //
        // Determinism contract: the cut must be a TOTAL order. A pd-only
        // comparator lets std::nth_element resolve PD ties (common for the
        // symmetric constellations) in stdlib-dependent order, so which
        // tied nodes survive — and every downstream golden number of a
        // truncated decode — varied across toolchains. The NodeId
        // tie-break is total (ids are unique) and reproducible (ids are
        // assigned in frontier order, itself deterministic by induction).
        // partial_sort rather than nth_element so the surviving
        // frontier's ORDER is pinned too: the next level assigns NodeIds
        // in frontier order, and those ids feed the next cut's key.
        truncated_ = true;
        std::partial_sort(next.begin(),
                          next.begin() + static_cast<std::ptrdiff_t>(opts_.max_frontier),
                          next.end(),
                          [](const ScratchNode& x, const ScratchNode& y2) {
                            return x.pd < y2.pd ||
                                   (x.pd == y2.pd && x.id < y2.id);
                          });
        result.stats.nodes_pruned += next.size() - opts_.max_frontier;
        next.resize(opts_.max_frontier);
      }

      frontier.swap(next);
      result.stats.peak_list_size =
          std::max<std::uint64_t>(result.stats.peak_list_size, frontier.size());
    }

    if (!frontier.empty()) {
      // Leaf level survivors: the minimum-PD one is the solution.
      const auto best_it = std::min_element(
          frontier.begin(), frontier.end(),
          [](const ScratchNode& x, const ScratchNode& y2) {
            return x.pd < y2.pd;
          });
      result.stats.leaves_reached += frontier.size();
      ++result.stats.radius_updates;
      best_pd = static_cast<double>(best_it->pd);
      mst.path_symbols(best_it->id, best_path);
      solved = true;
    } else {
      // Empty sphere: enlarge the radius and re-run the whole BFS — the
      // standard recovery, and the cost is charged (stats accumulate).
      radius_sq *= 2.0;
      SD_ASSERT(attempt < 64);
    }
  }

  std::vector<index_t>& layered = scratch_.layered;
  layered.resize(static_cast<usize>(m));
  for (index_t d = 0; d < m; ++d) {
    layered[static_cast<usize>(m - 1 - d)] = best_path[static_cast<usize>(d)];
  }
  to_antenna_order_into(pre, layered, result.indices);
  result.metric = best_pd;
  result.stats.search_seconds = timer.elapsed_seconds();
}

}  // namespace sd
