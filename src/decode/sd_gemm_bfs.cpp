#include "decode/sd_gemm_bfs.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "linalg/gemm.hpp"
#include "obs/trace.hpp"

namespace sd {

namespace {

struct FrontierNode {
  NodeId id;
  real pd;
};

}  // namespace

SdGemmBfsDetector::SdGemmBfsDetector(const Constellation& constellation,
                                     BfsOptions options)
    : c_(&constellation), opts_(options) {
  // BFS cannot prune without a finite radius; an unbounded sphere would make
  // the frontier exactly |Omega|^level, i.e. exhaustive ML.
  if (opts_.base.radius_policy == RadiusPolicy::kInfinite) {
    opts_.base.radius_policy = RadiusPolicy::kNoiseScaled;
  }
}

DecodeResult SdGemmBfsDetector::decode(const CMat& h, std::span<const cplx> y,
                                       double sigma2) {
  SD_TRACE_SPAN("decode");
  DecodeResult result;
  const Preprocessed pre = preprocess(h, y, opts_.base.sorted_qr);
  result.stats.preprocess_seconds = pre.seconds;
  search(pre, sigma2, result);
  materialize_symbols(*c_, result);
  return result;
}

void SdGemmBfsDetector::search(const Preprocessed& pre, double sigma2,
                               DecodeResult& result) {
  SD_TRACE_SPAN("decode.search");
  const index_t m = pre.r.rows();
  const index_t p = c_->order();
  result.stats.tree_levels = static_cast<std::uint64_t>(m);
  truncated_ = false;

  Timer timer;

  MetaStateTable mst(m, 4096);
  double radius_sq = initial_radius_sq(opts_.base, sigma2, m);

  std::vector<FrontierNode> frontier;
  std::vector<FrontierNode> next;
  std::vector<index_t> path(static_cast<usize>(m), 0);

  bool solved = false;
  std::vector<index_t> best_path(static_cast<usize>(m), 0);
  double best_pd = std::numeric_limits<double>::infinity();

  for (int attempt = 0; !solved; ++attempt) {
    mst.reset();
    frontier.clear();
    frontier.push_back(FrontierNode{kRootId, real{0}});

    for (index_t depth = 0; depth < m && !frontier.empty(); ++depth) {
      const index_t a = m - 1 - depth;
      const index_t k = m - a;  // R row-block length = depth + 1
      const usize f = frontier.size();
      const index_t cols = static_cast<index_t>(f) * p;

      // One level = one GEMM: z = R[a:m, a:m] * S, where S packs the
      // candidate tree-state blocks of every frontier node's every child —
      // the large level-wide matrix product that [1] maps onto the GPU.
      // Row 0 carries the new level's contribution (the PD increment).
      CMat a_block(k, k);
      for (index_t r2 = 0; r2 < k; ++r2) {
        for (index_t t = r2; t < k; ++t) {
          a_block(r2, t) = pre.r(a + r2, a + t);
        }
      }
      CMat s_mat(k, cols);
      for (usize ni = 0; ni < f; ++ni) {
        if (frontier[ni].id != kRootId) {
          mst.path_symbols(frontier[ni].id, path);
        }
        const index_t base_col = static_cast<index_t>(ni) * p;
        for (index_t c = 0; c < p; ++c) {
          s_mat(0, base_col + c) = c_->point(c);
        }
        for (index_t t = 1; t < k; ++t) {
          const cplx sym = c_->point(path[static_cast<usize>(depth - t)]);
          for (index_t c = 0; c < p; ++c) {
            s_mat(t, base_col + c) = sym;
          }
        }
      }
      CMat z(k, cols);
      gemm(Op::kNone, cplx{1, 0}, a_block, s_mat, cplx{0, 0}, z);
      ++result.stats.gemm_calls;
      result.stats.flops += gemm_flops(k, cols, k);
      result.stats.bytes_touched +=
          sizeof(cplx) * (static_cast<std::uint64_t>(k) * k +
                          2ull * static_cast<std::uint64_t>(k) * cols);
      result.stats.nodes_expanded += f;
      result.stats.nodes_generated += static_cast<std::uint64_t>(cols);

      const cplx target = pre.ybar[static_cast<usize>(a)];
      next.clear();
      for (usize ni = 0; ni < f; ++ni) {
        const index_t base_col = static_cast<index_t>(ni) * p;
        for (index_t c = 0; c < p; ++c) {
          const real pd =
              frontier[ni].pd + norm2(target - z(0, base_col + c));
          if (static_cast<double>(pd) >= radius_sq) {
            ++result.stats.nodes_pruned;
            continue;
          }
          const NodeId id =
              mst.insert(depth, MstNode{frontier[ni].id, c, pd});
          next.push_back(FrontierNode{id, pd});
        }
      }

      if (next.size() > opts_.max_frontier) {
        // Memory guard: keep the best max_frontier nodes. This is the
        // BER-costing heuristic GPU implementations fall back on.
        //
        // Determinism contract: the cut must be a TOTAL order. A pd-only
        // comparator lets std::nth_element resolve PD ties (common for the
        // symmetric constellations) in stdlib-dependent order, so which
        // tied nodes survive — and every downstream golden number of a
        // truncated decode — varied across toolchains. The NodeId
        // tie-break is total (ids are unique) and reproducible (ids are
        // assigned in frontier order, itself deterministic by induction).
        // partial_sort rather than nth_element so the surviving
        // frontier's ORDER is pinned too: the next level assigns NodeIds
        // in frontier order, and those ids feed the next cut's key.
        truncated_ = true;
        std::partial_sort(next.begin(),
                          next.begin() + static_cast<std::ptrdiff_t>(opts_.max_frontier),
                          next.end(),
                          [](const FrontierNode& x, const FrontierNode& y2) {
                            return x.pd < y2.pd ||
                                   (x.pd == y2.pd && x.id < y2.id);
                          });
        result.stats.nodes_pruned += next.size() - opts_.max_frontier;
        next.resize(opts_.max_frontier);
      }

      frontier.swap(next);
      result.stats.peak_list_size =
          std::max<std::uint64_t>(result.stats.peak_list_size, frontier.size());
    }

    if (!frontier.empty()) {
      // Leaf level survivors: the minimum-PD one is the solution.
      const auto best_it = std::min_element(
          frontier.begin(), frontier.end(),
          [](const FrontierNode& x, const FrontierNode& y2) {
            return x.pd < y2.pd;
          });
      result.stats.leaves_reached += frontier.size();
      ++result.stats.radius_updates;
      best_pd = static_cast<double>(best_it->pd);
      mst.path_symbols(best_it->id, best_path);
      solved = true;
    } else {
      // Empty sphere: enlarge the radius and re-run the whole BFS — the
      // standard recovery, and the cost is charged (stats accumulate).
      radius_sq *= 2.0;
      SD_ASSERT(attempt < 64);
    }
  }

  std::vector<index_t> layered(static_cast<usize>(m));
  for (index_t d = 0; d < m; ++d) {
    layered[static_cast<usize>(m - 1 - d)] = best_path[static_cast<usize>(d)];
  }
  result.indices = to_antenna_order(pre, layered);
  result.metric = best_pd;
  result.stats.search_seconds = timer.elapsed_seconds();
}

}  // namespace sd
