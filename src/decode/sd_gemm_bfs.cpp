#include "decode/sd_gemm_bfs.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "linalg/gemm.hpp"
#include "obs/trace.hpp"

namespace sd {

/// Per-frame state for the fused lockstep search. Each frame keeps its own
/// Meta State Table, frontier, and triangular system (ybar AND R may differ
/// per frame — frames carry their own prep in the wide path), so NodeIds,
/// truncation cuts, and stats evolve exactly as in a solo decode.
struct SdGemmBfsDetector::FusedFrame {
  PreprocessScratch prep;
  Preprocessed pre;
  std::optional<MetaStateTable> mst_storage;
  std::vector<ScratchNode> frontier;
  std::vector<ScratchNode> next;
  std::vector<index_t> path;
  std::vector<index_t> best_path;
  std::vector<index_t> layered;
  const PreprocessedChannel* chan = nullptr;  ///< this frame's own prep
  DecodeResult* out = nullptr;
  double radius_sq = 0.0;
  // Quantized-path state: scales are per channel, so each frame carries its
  // own quantized constellation and integer radius.
  std::vector<QuantNode> qfrontier;
  std::vector<QuantNode> qnext;
  std::vector<std::int16_t> qsyms;
  std::int32_t radius_q = 0;
  usize block = 0;       ///< index of this frame's A block at the level
  bool active = false;   ///< still in the fused lockstep
  bool restart = false;  ///< peeled off; re-run via sequential decode_with
  bool truncated = false;

  MetaStateTable& mst(index_t levels, usize capacity_per_level) {
    if (!mst_storage || mst_storage->levels() != levels ||
        mst_storage->capacity_per_level() != capacity_per_level) {
      mst_storage.emplace(levels, capacity_per_level);
    }
    return *mst_storage;
  }
};

namespace {

/// Quantizes the constellation into interleaved (re, im) Q(f) pairs — once
/// per decode, since the scale is per channel.
void quantize_constellation(const Constellation& c,
                            const quant::QuantSpec& spec,
                            std::vector<std::int16_t>& out,
                            std::uint64_t& clamps) {
  const index_t p = c.order();
  out.resize(2 * static_cast<usize>(p));
  for (index_t i = 0; i < p; ++i) {
    const cplx s = c.point(i);
    out[2 * static_cast<usize>(i)] =
        quant::quantize_sat(s.real(), spec, clamps);
    out[2 * static_cast<usize>(i) + 1] =
        quant::quantize_sat(s.imag(), spec, clamps);
  }
}

/// Maps the float radius into the Q(2f) integer domain, rounding UP so the
/// integer sphere never prunes a candidate the float radius would keep at
/// this scale. Saturation (counted as an overflow) means Q(2f) cannot
/// express a sphere this large — the search falls back to float if even
/// that sphere comes up empty.
std::int32_t quantized_radius(double radius_sq, const quant::QuantSpec& spec,
                              std::uint64_t& overflows) {
  const double scaled = std::ceil(radius_sq * static_cast<double>(spec.scale) *
                                  static_cast<double>(spec.scale));
  if (!(scaled < static_cast<double>(quant::kQuantPdMax))) {
    ++overflows;
    return quant::kQuantPdMax;
  }
  return static_cast<std::int32_t>(scaled);
}

}  // namespace

SdGemmBfsDetector::SdGemmBfsDetector(const Constellation& constellation,
                                     BfsOptions options)
    : c_(&constellation), opts_(options) {
  // BFS cannot prune without a finite radius; an unbounded sphere would make
  // the frontier exactly |Omega|^level, i.e. exhaustive ML.
  if (opts_.base.radius_policy == RadiusPolicy::kInfinite) {
    opts_.base.radius_policy = RadiusPolicy::kNoiseScaled;
  }
}

SdGemmBfsDetector::~SdGemmBfsDetector() = default;

DecodeResult SdGemmBfsDetector::decode(const CMat& h, std::span<const cplx> y,
                                       double sigma2) {
  DecodeResult result;
  decode_into(h, y, sigma2, result);
  return result;
}

void SdGemmBfsDetector::decode_into(const CMat& h, std::span<const cplx> y,
                                    double sigma2, DecodeResult& out) {
  SD_TRACE_SPAN("decode");
  out.reset();
  preprocess_into(h, y, opts_.base.sorted_qr, scratch_.prep, scratch_.pre);
  out.stats.preprocess_seconds = scratch_.pre.seconds;
  if (opts_.quantized) {
    // Same calibration+quantization code as build_channel_prep's quant
    // kinds, on the same R bytes — so decode_into and decode_with agree
    // bit-for-bit on the quantized path too.
    quant::quantize_channel_prep(scratch_.pre.r, qlocal_);
    search_quant(scratch_.pre, qlocal_, sigma2, out);
  } else {
    search(scratch_.pre, sigma2, out);
  }
  materialize_symbols(*c_, out);
}

void SdGemmBfsDetector::decode_with(const PreprocessedChannel& prep,
                                    std::span<const cplx> y, double sigma2,
                                    DecodeResult& out) {
  if (prep.kind != prep_kind()) {
    Detector::decode_with(prep, y, sigma2, out);
    return;
  }
  SD_TRACE_SPAN("decode");
  out.reset();
  preprocess_with_channel(prep, y, scratch_.prep, scratch_.pre);
  out.stats.preprocess_seconds = scratch_.pre.seconds;
  if (opts_.quantized) {
    search_quant(scratch_.pre, prep.qprep, sigma2, out);
  } else {
    search(scratch_.pre, sigma2, out);
  }
  materialize_symbols(*c_, out);
}

void SdGemmBfsDetector::decode_batch_with(const PreprocessedChannel& prep,
                                          std::span<BatchItem> items) {
  if (items.size() <= 1 || prep.kind != prep_kind()) {
    Detector::decode_batch_with(prep, items);
    return;
  }
  // Shared-prep batches are the degenerate wide batch: every frame points at
  // the same prep, so each level groups into a single A block.
  wide_items_.clear();
  for (BatchItem& item : items) {
    SD_CHECK(item.out != nullptr, "batch item missing an output slot");
    wide_items_.push_back(WideItem{&prep, item.y, item.sigma2, item.out});
  }
  decode_wide(wide_items_);
}

void SdGemmBfsDetector::decode_wide(std::span<WideItem> items) {
  if (items.size() <= 1) {
    Detector::decode_wide(items);  // solo decode_with sets truncated_
    return;
  }
  if (opts_.quantized) {
    decode_wide_quant(items);
    return;
  }
  SD_TRACE_SPAN("decode.batch");
  const index_t p = c_->order();
  const bool row0 = opts_.base.level_gemm == LevelGemm::kRow0;
  // Cap on the stacked tree-state width: the widest operand a SOLO decode can
  // legally form (a full frontier's children). Exceeding it peels frames off
  // the fused pass — from the END of the batch, deterministically — so fused
  // memory never exceeds the sequential worst case times one.
  const usize fused_col_budget =
      opts_.max_frontier * static_cast<usize>(p);

  while (fused_.size() < items.size()) {
    fused_.push_back(std::make_unique<FusedFrame>());
  }

  // Per-frame setup: derive each frame's triangular system from ITS OWN prep
  // and plant the virtual root, mirroring the start of a solo decode_with()
  // exactly. Frames whose prep kind doesn't match (they need the one-shot
  // fallback) or whose dimension differs from the batch's first lockstep
  // frame (levels would not line up) peel to the sequential path up front.
  index_t m = -1;
  for (usize i = 0; i < items.size(); ++i) {
    FusedFrame& fr = *fused_[i];
    WideItem& item = items[i];
    SD_CHECK(item.prep != nullptr, "wide item missing a prepared channel");
    SD_CHECK(item.out != nullptr, "wide item missing an output slot");
    fr.chan = item.prep;
    fr.out = item.out;
    fr.truncated = false;
    const index_t mi = item.prep->channel.matrix().cols();
    if (item.prep->kind != prep_kind() || (m >= 0 && mi != m)) {
      fr.active = false;
      fr.restart = true;
      continue;
    }
    m = mi;
    item.out->reset();
    preprocess_with_channel(*item.prep, item.y, fr.prep, fr.pre);
    item.out->stats.preprocess_seconds = fr.pre.seconds;
    item.out->stats.tree_levels = static_cast<std::uint64_t>(m);
    fr.radius_sq = initial_radius_sq(opts_.base, item.sigma2, m);
    fr.active = true;
    fr.restart = false;
    fr.mst(m, 4096).reset();
    fr.frontier.clear();
    fr.frontier.push_back(ScratchNode{kRootId, real{0}});
    fr.path.assign(static_cast<usize>(m), 0);
    fr.best_path.assign(static_cast<usize>(m), 0);
  }

  Timer timer;
  for (index_t depth = 0; depth < m; ++depth) {
    // A frame whose frontier emptied needs the radius-doubling retry; peel
    // it off (its partial stats are discarded with out.reset() below).
    usize active_count = 0;
    usize total_cols = 0;
    for (usize i = 0; i < items.size(); ++i) {
      FusedFrame& fr = *fused_[i];
      if (!fr.active) continue;
      if (fr.frontier.empty()) {
        fr.active = false;
        fr.restart = true;
        continue;
      }
      ++active_count;
      total_cols += fr.frontier.size() * static_cast<usize>(p);
    }
    for (usize i = items.size();
         i-- > 0 && total_cols > fused_col_budget && active_count > 1;) {
      FusedFrame& fr = *fused_[i];
      if (!fr.active) continue;
      total_cols -= fr.frontier.size() * static_cast<usize>(p);
      fr.active = false;
      fr.restart = true;
      --active_count;
    }
    if (active_count == 0) break;

    const index_t a = m - 1 - depth;
    const index_t k = m - a;
    const index_t zr = row0 ? 1 : k;

    // Stacked A: one zr x k R row-block per DISTINCT prep among the active
    // frames, side by side in first-appearance order. Same-channel frames
    // share a block (coherent traffic degenerates to the single-block case);
    // i.i.d. traffic gets one block per frame.
    block_keys_.clear();
    block_pres_.clear();
    for (usize i = 0; i < items.size(); ++i) {
      FusedFrame& fr = *fused_[i];
      if (!fr.active) continue;
      usize g = 0;
      while (g < block_keys_.size() && block_keys_[g] != fr.chan) ++g;
      if (g == block_keys_.size()) {
        block_keys_.push_back(fr.chan);
        block_pres_.push_back(&fr.pre);
      }
      fr.block = g;
    }
    CMat& a_stack = scratch_.a_block;
    a_stack.reshape(zr, static_cast<index_t>(block_keys_.size()) * k);
    for (usize g = 0; g < block_keys_.size(); ++g) {
      const Preprocessed& gpre = *block_pres_[g];
      const index_t base = static_cast<index_t>(g) * k;
      for (index_t r2 = 0; r2 < zr; ++r2) {
        for (index_t t = 0; t < r2; ++t) a_stack(r2, base + t) = cplx{0, 0};
        for (index_t t = r2; t < k; ++t) {
          a_stack(r2, base + t) = gpre.r(a + r2, a + t);
        }
      }
    }

    // One stacked tree-state matrix: frame j's segment is exactly the S it
    // would build solo. Column independence of the GEMM kernels (DESIGN.md
    // §12/§14) makes each segment's product bit-identical to the solo
    // product against that frame's own A block.
    CMat& s_mat = scratch_.s_mat;
    s_mat.reshape(k, static_cast<index_t>(total_cols));
    groups_.clear();
    usize col_off = 0;
    for (usize i = 0; i < items.size(); ++i) {
      FusedFrame& fr = *fused_[i];
      if (!fr.active) continue;
      const usize f = fr.frontier.size();
      for (usize ni = 0; ni < f; ++ni) {
        if (fr.frontier[ni].id != kRootId) {
          fr.mst_storage->path_symbols(fr.frontier[ni].id, fr.path);
        }
        const index_t base_col =
            static_cast<index_t>(col_off + ni * static_cast<usize>(p));
        for (index_t c = 0; c < p; ++c) {
          s_mat(0, base_col + c) = c_->point(c);
        }
        for (index_t t = 1; t < k; ++t) {
          const cplx sym = c_->point(fr.path[static_cast<usize>(depth - t)]);
          for (index_t c = 0; c < p; ++c) {
            s_mat(t, base_col + c) = sym;
          }
        }
      }
      groups_.push_back(GemmGroup{static_cast<index_t>(fr.block) * k,
                                  static_cast<index_t>(col_off),
                                  static_cast<index_t>(f) * p});
      col_off += f * static_cast<usize>(p);
    }

    // ONE grouped block-diagonal product for the whole level, across all
    // channels — the cross-channel generalization of the single level GEMM.
    CMat& z = scratch_.z;
    z.reshape(zr, static_cast<index_t>(total_cols));
    gemm_grouped(cplx{1, 0}, a_stack, k, s_mat, cplx{0, 0}, z, groups_,
                 scratch_.gemm_ws);

    // Per-frame consume: prune / insert / truncate with the frame's own MST
    // and stats — the exact solo code over the frame's column segment. Stats
    // are charged as-if-solo (each frame "sees" its own k x (f*p) GEMM), so
    // fused and sequential DecodeStats match field for field.
    col_off = 0;
    for (usize i = 0; i < items.size(); ++i) {
      FusedFrame& fr = *fused_[i];
      if (!fr.active) continue;
      DecodeStats& stats = fr.out->stats;
      const usize f = fr.frontier.size();
      const index_t cols = static_cast<index_t>(f) * p;
      ++stats.gemm_calls;
      stats.flops += gemm_flops(zr, cols, k);
      stats.bytes_touched +=
          sizeof(cplx) * (static_cast<std::uint64_t>(zr) * k +
                          static_cast<std::uint64_t>(k) * cols +
                          static_cast<std::uint64_t>(zr) * cols);
      stats.nodes_expanded += f;
      stats.nodes_generated += static_cast<std::uint64_t>(cols);

      MetaStateTable& mst = *fr.mst_storage;
      const cplx target = fr.pre.ybar[static_cast<usize>(a)];
      fr.next.clear();
      for (usize ni = 0; ni < f; ++ni) {
        const index_t base_col =
            static_cast<index_t>(col_off + ni * static_cast<usize>(p));
        for (index_t c = 0; c < p; ++c) {
          const real pd =
              fr.frontier[ni].pd + norm2(target - z(0, base_col + c));
          if (static_cast<double>(pd) >= fr.radius_sq) {
            ++stats.nodes_pruned;
            continue;
          }
          const NodeId id =
              mst.insert(depth, MstNode{fr.frontier[ni].id, c, pd});
          fr.next.push_back(ScratchNode{id, pd});
        }
      }
      if (fr.next.size() > opts_.max_frontier) {
        fr.truncated = true;
        std::partial_sort(
            fr.next.begin(),
            fr.next.begin() + static_cast<std::ptrdiff_t>(opts_.max_frontier),
            fr.next.end(), [](const ScratchNode& x, const ScratchNode& y2) {
              return x.pd < y2.pd || (x.pd == y2.pd && x.id < y2.id);
            });
        stats.nodes_pruned += fr.next.size() - opts_.max_frontier;
        fr.next.resize(opts_.max_frontier);
      }
      fr.frontier.swap(fr.next);
      stats.peak_list_size = std::max<std::uint64_t>(stats.peak_list_size,
                                                     fr.frontier.size());
      col_off += f * static_cast<usize>(p);
    }
  }
  const double fused_seconds = timer.elapsed_seconds();

  // Harvest solved frames; peel off the rest.
  for (usize i = 0; i < items.size(); ++i) {
    FusedFrame& fr = *fused_[i];
    if (!fr.active || fr.frontier.empty()) {
      fr.restart = true;
      continue;
    }
    const auto best_it = std::min_element(
        fr.frontier.begin(), fr.frontier.end(),
        [](const ScratchNode& x, const ScratchNode& y2) {
          return x.pd < y2.pd;
        });
    fr.out->stats.leaves_reached += fr.frontier.size();
    ++fr.out->stats.radius_updates;
    const double best_pd = static_cast<double>(best_it->pd);
    fr.mst_storage->path_symbols(best_it->id, fr.best_path);
    fr.layered.resize(static_cast<usize>(m));
    for (index_t d = 0; d < m; ++d) {
      fr.layered[static_cast<usize>(m - 1 - d)] =
          fr.best_path[static_cast<usize>(d)];
    }
    to_antenna_order_into(fr.pre, fr.layered, fr.out->indices);
    fr.out->metric = best_pd;
    // Wall time is genuinely shared; each frame is charged the fused pass
    // (the *_seconds fields are measurements, not part of the bit-identity
    // contract — tests compare everything else).
    fr.out->stats.search_seconds = fused_seconds;
    materialize_symbols(*c_, *fr.out);
  }

  // Sequential fallback for peeled frames (kind/dimension mismatches,
  // empty-sphere retries, and budget demotions): a full solo decode against
  // the frame's OWN prep reproduces the exact sequential bits AND stats,
  // because decode_with() resets the result before re-charging.
  for (usize i = 0; i < items.size(); ++i) {
    FusedFrame& fr = *fused_[i];
    if (!fr.restart) continue;
    decode_with(*fr.chan, items[i].y, items[i].sigma2, *items[i].out);
    fr.truncated = truncated_;
  }
  // Match a sequential loop's view: report the batch's LAST frame.
  truncated_ = fused_[items.size() - 1]->truncated;
}

void SdGemmBfsDetector::search(const Preprocessed& pre, double sigma2,
                               DecodeResult& result) {
  SD_TRACE_SPAN("decode.search");
  const index_t m = pre.r.rows();
  const index_t p = c_->order();
  result.stats.tree_levels = static_cast<std::uint64_t>(m);
  truncated_ = false;

  Timer timer;

  MetaStateTable& mst = scratch_.mst(m, 4096);
  double radius_sq = initial_radius_sq(opts_.base, sigma2, m);

  const bool row0 = opts_.base.level_gemm == LevelGemm::kRow0;

  std::vector<ScratchNode>& frontier = scratch_.frontier;
  std::vector<ScratchNode>& next = scratch_.next;
  std::vector<index_t>& path = scratch_.path;
  path.assign(static_cast<usize>(m), 0);

  bool solved = false;
  std::vector<index_t>& best_path = scratch_.best_path;
  best_path.assign(static_cast<usize>(m), 0);
  double best_pd = std::numeric_limits<double>::infinity();

  for (int attempt = 0; !solved; ++attempt) {
    mst.reset();
    frontier.clear();
    frontier.push_back(ScratchNode{kRootId, real{0}});

    for (index_t depth = 0; depth < m && !frontier.empty(); ++depth) {
      const index_t a = m - 1 - depth;
      const index_t k = m - a;  // R row-block length = depth + 1
      const usize f = frontier.size();
      const index_t cols = static_cast<index_t>(f) * p;

      // One level = one GEMM: z = R[a:m, a:m] * S, where S packs the
      // candidate tree-state blocks of every frontier node's every child —
      // the large level-wide matrix product that [1] maps onto the GPU.
      // Row 0 carries the new level's contribution (the PD increment).
      //
      // Operands live in detector-owned scratch: reshape() keeps the
      // high-water allocation, a_block's full rows are (re)written including
      // the explicit lower-triangle zeros reuse no longer provides, and
      // s_mat / z are fully overwritten (z by the beta == 0 GEMM contract).
      // In LevelGemm::kRow0 mode only row 0 of the product is formed — a
      // 1 x k by k x cols GEMM — which is bit-identical to row 0 of the full
      // product and what the PD loop below actually reads; flop/byte charges
      // then reflect the smaller product.
      const index_t zr = row0 ? 1 : k;
      CMat& a_block = scratch_.a_block;
      a_block.reshape(zr, k);
      for (index_t r2 = 0; r2 < zr; ++r2) {
        for (index_t t = 0; t < r2; ++t) a_block(r2, t) = cplx{0, 0};
        for (index_t t = r2; t < k; ++t) {
          a_block(r2, t) = pre.r(a + r2, a + t);
        }
      }
      CMat& s_mat = scratch_.s_mat;
      s_mat.reshape(k, cols);
      for (usize ni = 0; ni < f; ++ni) {
        if (frontier[ni].id != kRootId) {
          mst.path_symbols(frontier[ni].id, path);
        }
        const index_t base_col = static_cast<index_t>(ni) * p;
        for (index_t c = 0; c < p; ++c) {
          s_mat(0, base_col + c) = c_->point(c);
        }
        for (index_t t = 1; t < k; ++t) {
          const cplx sym = c_->point(path[static_cast<usize>(depth - t)]);
          for (index_t c = 0; c < p; ++c) {
            s_mat(t, base_col + c) = sym;
          }
        }
      }
      CMat& z = scratch_.z;
      z.reshape(zr, cols);
      gemm(Op::kNone, cplx{1, 0}, a_block, s_mat, cplx{0, 0}, z,
           scratch_.gemm_ws);
      ++result.stats.gemm_calls;
      result.stats.flops += gemm_flops(zr, cols, k);
      result.stats.bytes_touched +=
          sizeof(cplx) * (static_cast<std::uint64_t>(zr) * k +
                          static_cast<std::uint64_t>(k) * cols +
                          static_cast<std::uint64_t>(zr) * cols);
      result.stats.nodes_expanded += f;
      result.stats.nodes_generated += static_cast<std::uint64_t>(cols);

      const cplx target = pre.ybar[static_cast<usize>(a)];
      next.clear();
      for (usize ni = 0; ni < f; ++ni) {
        const index_t base_col = static_cast<index_t>(ni) * p;
        for (index_t c = 0; c < p; ++c) {
          const real pd =
              frontier[ni].pd + norm2(target - z(0, base_col + c));
          if (static_cast<double>(pd) >= radius_sq) {
            ++result.stats.nodes_pruned;
            continue;
          }
          const NodeId id =
              mst.insert(depth, MstNode{frontier[ni].id, c, pd});
          next.push_back(ScratchNode{id, pd});
        }
      }

      if (next.size() > opts_.max_frontier) {
        // Memory guard: keep the best max_frontier nodes. This is the
        // BER-costing heuristic GPU implementations fall back on.
        //
        // Determinism contract: the cut must be a TOTAL order. A pd-only
        // comparator lets std::nth_element resolve PD ties (common for the
        // symmetric constellations) in stdlib-dependent order, so which
        // tied nodes survive — and every downstream golden number of a
        // truncated decode — varied across toolchains. The NodeId
        // tie-break is total (ids are unique) and reproducible (ids are
        // assigned in frontier order, itself deterministic by induction).
        // partial_sort rather than nth_element so the surviving
        // frontier's ORDER is pinned too: the next level assigns NodeIds
        // in frontier order, and those ids feed the next cut's key.
        truncated_ = true;
        std::partial_sort(next.begin(),
                          next.begin() + static_cast<std::ptrdiff_t>(opts_.max_frontier),
                          next.end(),
                          [](const ScratchNode& x, const ScratchNode& y2) {
                            return x.pd < y2.pd ||
                                   (x.pd == y2.pd && x.id < y2.id);
                          });
        result.stats.nodes_pruned += next.size() - opts_.max_frontier;
        next.resize(opts_.max_frontier);
      }

      frontier.swap(next);
      result.stats.peak_list_size =
          std::max<std::uint64_t>(result.stats.peak_list_size, frontier.size());
    }

    if (!frontier.empty()) {
      // Leaf level survivors: the minimum-PD one is the solution.
      const auto best_it = std::min_element(
          frontier.begin(), frontier.end(),
          [](const ScratchNode& x, const ScratchNode& y2) {
            return x.pd < y2.pd;
          });
      result.stats.leaves_reached += frontier.size();
      ++result.stats.radius_updates;
      best_pd = static_cast<double>(best_it->pd);
      mst.path_symbols(best_it->id, best_path);
      solved = true;
    } else {
      // Empty sphere: enlarge the radius and re-run the whole BFS — the
      // standard recovery, and the cost is charged (stats accumulate).
      radius_sq *= 2.0;
      SD_ASSERT(attempt < 64);
    }
  }

  std::vector<index_t>& layered = scratch_.layered;
  layered.resize(static_cast<usize>(m));
  for (index_t d = 0; d < m; ++d) {
    layered[static_cast<usize>(m - 1 - d)] = best_path[static_cast<usize>(d)];
  }
  to_antenna_order_into(pre, layered, result.indices);
  result.metric = best_pd;
  result.stats.search_seconds = timer.elapsed_seconds();
}

void SdGemmBfsDetector::search_quant(const Preprocessed& pre,
                                     const quant::QuantChannelPrep& qprep,
                                     double sigma2, DecodeResult& result) {
  SD_TRACE_SPAN("decode.search");
  SD_CHECK(qprep.valid(), "quantized search needs a calibrated channel prep");
  const index_t m = pre.r.rows();
  const index_t p = c_->order();
  result.stats.tree_levels = static_cast<std::uint64_t>(m);
  truncated_ = false;

  Timer timer;

  const quant::QuantSpec& spec = qprep.spec;
  const int fb = spec.frac_bits;
  quantize_constellation(*c_, spec, qsyms_, result.stats.quant_saturations);

  MetaStateTable& mst = scratch_.mst(m, 4096);
  double radius_sq = initial_radius_sq(opts_.base, sigma2, m);

  std::vector<QuantNode>& frontier = qfrontier_;
  std::vector<QuantNode>& next = qnext_;
  std::vector<index_t>& path = scratch_.path;
  path.assign(static_cast<usize>(m), 0);
  std::vector<index_t>& best_path = scratch_.best_path;
  best_path.assign(static_cast<usize>(m), 0);
  std::int32_t best_pd = quant::kQuantPdMax;

  bool solved = false;
  for (int attempt = 0; !solved; ++attempt) {
    const std::int32_t radius_q =
        quantized_radius(radius_sq, spec, result.stats.quant_overflows);
    mst.reset();
    frontier.clear();
    frontier.push_back(QuantNode{kRootId, 0});

    for (index_t depth = 0; depth < m && !frontier.empty(); ++depth) {
      const index_t a = m - 1 - depth;
      const index_t k = m - a;
      const usize f = frontier.size();
      const index_t cols = static_cast<index_t>(f) * p;

      // The level product is always row 0 only on the quantized path: the
      // PD recursion below consumes nothing but the new level's residual,
      // and the int16 operands make the 1 x k by k x cols product the
      // madd kernel's native shape.
      qa_re_.reshape(1, k);
      qa_im_.reshape(1, k);
      for (index_t t = 0; t < k; ++t) {
        qa_re_(0, t) = qprep.r_re(a, a + t);
        qa_im_(0, t) = qprep.r_im(a, a + t);
      }
      qs_ri_.reshape(k, 2 * cols);
      for (usize ni = 0; ni < f; ++ni) {
        if (frontier[ni].id != kRootId) {
          mst.path_symbols(frontier[ni].id, path);
        }
        const index_t base_col = static_cast<index_t>(ni) * p;
        std::int16_t* row0 = &qs_ri_(0, 2 * base_col);
        std::copy(qsyms_.begin(), qsyms_.end(), row0);
        for (index_t t = 1; t < k; ++t) {
          const usize si =
              2 * static_cast<usize>(path[static_cast<usize>(depth - t)]);
          const std::int16_t sr = qsyms_[si];
          const std::int16_t sim = qsyms_[si + 1];
          std::int16_t* row = &qs_ri_(t, 2 * base_col);
          for (index_t c = 0; c < p; ++c) {
            row[2 * c] = sr;
            row[2 * c + 1] = sim;
          }
        }
      }
      quant::qgemm_level(qa_re_, qa_im_, qs_ri_, qz_re_, qz_im_);
      ++result.stats.gemm_calls;
      // flops are charged MAC-equivalent (same complex MAC count as the
      // float product of this shape); bytes reflect the narrow operands.
      result.stats.flops += gemm_flops(1, cols, k);
      result.stats.bytes_touched += quant::qgemm_bytes(1, cols, k);
      result.stats.nodes_expanded += f;
      result.stats.nodes_generated += static_cast<std::uint64_t>(cols);
      result.stats.quant_requants += static_cast<std::uint64_t>(cols);

      const cplx target = pre.ybar[static_cast<usize>(a)];
      const std::int32_t t_re =
          static_cast<std::int32_t>(quant::quantize_sat(
              target.real(), spec, result.stats.quant_saturations))
          << fb;
      const std::int32_t t_im =
          static_cast<std::int32_t>(quant::quantize_sat(
              target.imag(), spec, result.stats.quant_saturations))
          << fb;
      next.clear();
      for (usize ni = 0; ni < f; ++ni) {
        const index_t base_col = static_cast<index_t>(ni) * p;
        for (index_t c = 0; c < p; ++c) {
          // Residual in exact Q(2f), then the saturating requantize to Q(f)
          // — the between-levels narrowing — and an exact int32 PD.
          const std::int32_t dre = t_re - qz_re_(0, base_col + c);
          const std::int32_t dim = t_im - qz_im_(0, base_col + c);
          const std::int16_t rqr = quant::requantize_sat(
              dre, fb, result.stats.quant_saturations);
          const std::int16_t rqi = quant::requantize_sat(
              dim, fb, result.stats.quant_saturations);
          const std::int32_t inc = static_cast<std::int32_t>(rqr) * rqr +
                                   static_cast<std::int32_t>(rqi) * rqi;
          const std::int32_t pd = quant::pd_add_sat(
              frontier[ni].pd, inc, result.stats.quant_overflows);
          if (pd >= radius_q) {
            ++result.stats.nodes_pruned;
            continue;
          }
          // The MST records the dequantized PD so path/metric reporting
          // stays in the float domain; the search itself compares ints.
          const NodeId id = mst.insert(
              depth,
              MstNode{frontier[ni].id, c,
                      static_cast<real>(static_cast<double>(pd) *
                                        spec.inv_scale2)});
          next.push_back(QuantNode{id, pd});
        }
      }

      if (next.size() > opts_.max_frontier) {
        // Same total-order cut as the float path, on EXACT ints — ties are
        // genuine value ties, and the NodeId tie-break pins them.
        truncated_ = true;
        std::partial_sort(
            next.begin(),
            next.begin() + static_cast<std::ptrdiff_t>(opts_.max_frontier),
            next.end(), [](const QuantNode& x, const QuantNode& y2) {
              return x.pd < y2.pd || (x.pd == y2.pd && x.id < y2.id);
            });
        result.stats.nodes_pruned += next.size() - opts_.max_frontier;
        next.resize(opts_.max_frontier);
      }

      frontier.swap(next);
      result.stats.peak_list_size =
          std::max<std::uint64_t>(result.stats.peak_list_size, frontier.size());
    }

    if (!frontier.empty()) {
      const auto best_it = std::min_element(
          frontier.begin(), frontier.end(),
          [](const QuantNode& x, const QuantNode& y2) { return x.pd < y2.pd; });
      result.stats.leaves_reached += frontier.size();
      ++result.stats.radius_updates;
      best_pd = best_it->pd;
      mst.path_symbols(best_it->id, best_path);
      solved = true;
    } else if (radius_q >= quant::kQuantPdMax) {
      // The sphere is already as large as Q(2f) can express and still came
      // up empty — a quantization floor, not a radius problem. Re-run this
      // frame on the float path (exactly decode_with's float search, with
      // the quant attempt's partial stats discarded like any retry's).
      const double prep_seconds = result.stats.preprocess_seconds;
      result.reset();
      result.stats.preprocess_seconds = prep_seconds;
      search(pre, sigma2, result);
      result.stats.quant_fallbacks = 1;
      return;
    } else {
      radius_sq *= 2.0;
      SD_ASSERT(attempt < 64);
    }
  }

  std::vector<index_t>& layered = scratch_.layered;
  layered.resize(static_cast<usize>(m));
  for (index_t d = 0; d < m; ++d) {
    layered[static_cast<usize>(m - 1 - d)] = best_path[static_cast<usize>(d)];
  }
  to_antenna_order_into(pre, layered, result.indices);
  result.metric = static_cast<double>(best_pd) * spec.inv_scale2;
  result.stats.search_seconds = timer.elapsed_seconds();
}

void SdGemmBfsDetector::decode_wide_quant(std::span<WideItem> items) {
  SD_TRACE_SPAN("decode.batch");
  const index_t p = c_->order();
  const usize fused_col_budget = opts_.max_frontier * static_cast<usize>(p);

  while (fused_.size() < items.size()) {
    fused_.push_back(std::make_unique<FusedFrame>());
  }

  // Per-frame setup, mirroring the float wide path; additionally each frame
  // quantizes the constellation and its radius under ITS OWN QuantSpec
  // (scales are per channel). Frames with a non-quant prep kind or an
  // uncalibrated prep peel to the sequential path up front.
  index_t m = -1;
  for (usize i = 0; i < items.size(); ++i) {
    FusedFrame& fr = *fused_[i];
    WideItem& item = items[i];
    SD_CHECK(item.prep != nullptr, "wide item missing a prepared channel");
    SD_CHECK(item.out != nullptr, "wide item missing an output slot");
    fr.chan = item.prep;
    fr.out = item.out;
    fr.truncated = false;
    const index_t mi = item.prep->channel.matrix().cols();
    if (item.prep->kind != prep_kind() || !item.prep->qprep.valid() ||
        (m >= 0 && mi != m)) {
      fr.active = false;
      fr.restart = true;
      continue;
    }
    m = mi;
    item.out->reset();
    preprocess_with_channel(*item.prep, item.y, fr.prep, fr.pre);
    item.out->stats.preprocess_seconds = fr.pre.seconds;
    item.out->stats.tree_levels = static_cast<std::uint64_t>(m);
    const quant::QuantSpec& spec = item.prep->qprep.spec;
    quantize_constellation(*c_, spec, fr.qsyms,
                           item.out->stats.quant_saturations);
    fr.radius_sq = initial_radius_sq(opts_.base, item.sigma2, m);
    fr.radius_q = quantized_radius(fr.radius_sq, spec,
                                   item.out->stats.quant_overflows);
    fr.active = true;
    fr.restart = false;
    fr.mst(m, 4096).reset();
    fr.qfrontier.clear();
    fr.qfrontier.push_back(QuantNode{kRootId, 0});
    fr.path.assign(static_cast<usize>(m), 0);
    fr.best_path.assign(static_cast<usize>(m), 0);
  }

  Timer timer;
  for (index_t depth = 0; depth < m; ++depth) {
    // Empty-frontier frames peel to the sequential quant decode, which owns
    // the radius-doubling retry AND the float fallback.
    usize active_count = 0;
    usize total_cols = 0;
    for (usize i = 0; i < items.size(); ++i) {
      FusedFrame& fr = *fused_[i];
      if (!fr.active) continue;
      if (fr.qfrontier.empty()) {
        fr.active = false;
        fr.restart = true;
        continue;
      }
      ++active_count;
      total_cols += fr.qfrontier.size() * static_cast<usize>(p);
    }
    for (usize i = items.size();
         i-- > 0 && total_cols > fused_col_budget && active_count > 1;) {
      FusedFrame& fr = *fused_[i];
      if (!fr.active) continue;
      total_cols -= fr.qfrontier.size() * static_cast<usize>(p);
      fr.active = false;
      fr.restart = true;
      --active_count;
    }
    if (active_count == 0) break;

    const index_t a = m - 1 - depth;
    const index_t k = m - a;

    // Stacked A planes: one 1 x k quantized R row per DISTINCT prep.
    block_keys_.clear();
    block_qpreps_.clear();
    for (usize i = 0; i < items.size(); ++i) {
      FusedFrame& fr = *fused_[i];
      if (!fr.active) continue;
      usize g = 0;
      while (g < block_keys_.size() && block_keys_[g] != fr.chan) ++g;
      if (g == block_keys_.size()) {
        block_keys_.push_back(fr.chan);
        block_qpreps_.push_back(&fr.chan->qprep);
      }
      fr.block = g;
    }
    qa_re_.reshape(1, static_cast<index_t>(block_keys_.size()) * k);
    qa_im_.reshape(1, static_cast<index_t>(block_keys_.size()) * k);
    for (usize g = 0; g < block_qpreps_.size(); ++g) {
      const quant::QuantChannelPrep& qp = *block_qpreps_[g];
      const index_t base = static_cast<index_t>(g) * k;
      for (index_t t = 0; t < k; ++t) {
        qa_re_(0, base + t) = qp.r_re(a, a + t);
        qa_im_(0, base + t) = qp.r_im(a, a + t);
      }
    }

    // One stacked interleaved tree-state operand; frame j's segment is
    // exactly the S it would build solo (under its own QuantSpec).
    qs_ri_.reshape(k, 2 * static_cast<index_t>(total_cols));
    groups_.clear();
    usize col_off = 0;
    for (usize i = 0; i < items.size(); ++i) {
      FusedFrame& fr = *fused_[i];
      if (!fr.active) continue;
      const usize f = fr.qfrontier.size();
      for (usize ni = 0; ni < f; ++ni) {
        if (fr.qfrontier[ni].id != kRootId) {
          fr.mst_storage->path_symbols(fr.qfrontier[ni].id, fr.path);
        }
        const index_t base_col =
            static_cast<index_t>(col_off + ni * static_cast<usize>(p));
        std::int16_t* row0 = &qs_ri_(0, 2 * base_col);
        std::copy(fr.qsyms.begin(), fr.qsyms.end(), row0);
        for (index_t t = 1; t < k; ++t) {
          const usize si =
              2 * static_cast<usize>(fr.path[static_cast<usize>(depth - t)]);
          const std::int16_t sr = fr.qsyms[si];
          const std::int16_t sim = fr.qsyms[si + 1];
          std::int16_t* row = &qs_ri_(t, 2 * base_col);
          for (index_t c = 0; c < p; ++c) {
            row[2 * c] = sr;
            row[2 * c + 1] = sim;
          }
        }
      }
      groups_.push_back(GemmGroup{static_cast<index_t>(fr.block) * k,
                                  static_cast<index_t>(col_off),
                                  static_cast<index_t>(f) * p});
      col_off += f * static_cast<usize>(p);
    }

    // ONE grouped block-diagonal int16 product for the whole level.
    qz_re_.reshape(1, static_cast<index_t>(total_cols));
    qz_im_.reshape(1, static_cast<index_t>(total_cols));
    quant::qgemm_level_grouped(qa_re_, qa_im_, k, qs_ri_, qz_re_, qz_im_,
                               groups_);

    // Per-frame consume — the exact solo integer code over the frame's
    // column segment, with the frame's own spec/shift/radius.
    col_off = 0;
    for (usize i = 0; i < items.size(); ++i) {
      FusedFrame& fr = *fused_[i];
      if (!fr.active) continue;
      DecodeStats& stats = fr.out->stats;
      const quant::QuantSpec& spec = fr.chan->qprep.spec;
      const int fb = spec.frac_bits;
      const usize f = fr.qfrontier.size();
      const index_t cols = static_cast<index_t>(f) * p;
      ++stats.gemm_calls;
      stats.flops += gemm_flops(1, cols, k);
      stats.bytes_touched += quant::qgemm_bytes(1, cols, k);
      stats.nodes_expanded += f;
      stats.nodes_generated += static_cast<std::uint64_t>(cols);
      stats.quant_requants += static_cast<std::uint64_t>(cols);

      MetaStateTable& mst = *fr.mst_storage;
      const cplx target = fr.pre.ybar[static_cast<usize>(a)];
      const std::int32_t t_re =
          static_cast<std::int32_t>(quant::quantize_sat(
              target.real(), spec, stats.quant_saturations))
          << fb;
      const std::int32_t t_im =
          static_cast<std::int32_t>(quant::quantize_sat(
              target.imag(), spec, stats.quant_saturations))
          << fb;
      fr.qnext.clear();
      for (usize ni = 0; ni < f; ++ni) {
        const index_t base_col =
            static_cast<index_t>(col_off + ni * static_cast<usize>(p));
        for (index_t c = 0; c < p; ++c) {
          const std::int32_t dre = t_re - qz_re_(0, base_col + c);
          const std::int32_t dim = t_im - qz_im_(0, base_col + c);
          const std::int16_t rqr =
              quant::requantize_sat(dre, fb, stats.quant_saturations);
          const std::int16_t rqi =
              quant::requantize_sat(dim, fb, stats.quant_saturations);
          const std::int32_t inc = static_cast<std::int32_t>(rqr) * rqr +
                                   static_cast<std::int32_t>(rqi) * rqi;
          const std::int32_t pd = quant::pd_add_sat(
              fr.qfrontier[ni].pd, inc, stats.quant_overflows);
          if (pd >= fr.radius_q) {
            ++stats.nodes_pruned;
            continue;
          }
          const NodeId id = mst.insert(
              depth,
              MstNode{fr.qfrontier[ni].id, c,
                      static_cast<real>(static_cast<double>(pd) *
                                        spec.inv_scale2)});
          fr.qnext.push_back(QuantNode{id, pd});
        }
      }
      if (fr.qnext.size() > opts_.max_frontier) {
        fr.truncated = true;
        std::partial_sort(
            fr.qnext.begin(),
            fr.qnext.begin() + static_cast<std::ptrdiff_t>(opts_.max_frontier),
            fr.qnext.end(), [](const QuantNode& x, const QuantNode& y2) {
              return x.pd < y2.pd || (x.pd == y2.pd && x.id < y2.id);
            });
        stats.nodes_pruned += fr.qnext.size() - opts_.max_frontier;
        fr.qnext.resize(opts_.max_frontier);
      }
      fr.qfrontier.swap(fr.qnext);
      stats.peak_list_size = std::max<std::uint64_t>(stats.peak_list_size,
                                                     fr.qfrontier.size());
      col_off += f * static_cast<usize>(p);
    }
  }
  const double fused_seconds = timer.elapsed_seconds();

  // Harvest solved frames; peel off the rest.
  for (usize i = 0; i < items.size(); ++i) {
    FusedFrame& fr = *fused_[i];
    if (!fr.active || fr.qfrontier.empty()) {
      fr.restart = true;
      continue;
    }
    const auto best_it = std::min_element(
        fr.qfrontier.begin(), fr.qfrontier.end(),
        [](const QuantNode& x, const QuantNode& y2) { return x.pd < y2.pd; });
    fr.out->stats.leaves_reached += fr.qfrontier.size();
    ++fr.out->stats.radius_updates;
    fr.mst_storage->path_symbols(best_it->id, fr.best_path);
    fr.layered.resize(static_cast<usize>(m));
    for (index_t d = 0; d < m; ++d) {
      fr.layered[static_cast<usize>(m - 1 - d)] =
          fr.best_path[static_cast<usize>(d)];
    }
    to_antenna_order_into(fr.pre, fr.layered, fr.out->indices);
    fr.out->metric = static_cast<double>(best_it->pd) *
                     fr.chan->qprep.spec.inv_scale2;
    fr.out->stats.search_seconds = fused_seconds;
    materialize_symbols(*c_, *fr.out);
  }

  // Sequential fallback for peeled frames: the solo quant decode owns the
  // radius-doubling retry and the float fallback, and resets the result
  // before re-charging — exactly the sequential bits AND stats.
  for (usize i = 0; i < items.size(); ++i) {
    FusedFrame& fr = *fused_[i];
    if (!fr.restart) continue;
    decode_with(*fr.chan, items[i].y, items[i].sigma2, *items[i].out);
    fr.truncated = truncated_;
  }
  truncated_ = fused_[items.size() - 1]->truncated;
}

}  // namespace sd
