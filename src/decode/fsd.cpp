#include "decode/fsd.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace sd {

FsdDetector::FsdDetector(const Constellation& constellation,
                         FsdOptions options)
    : c_(&constellation), opts_(options) {
  SD_CHECK(opts_.full_levels >= 1, "FSD needs at least one full level");
}

DecodeResult FsdDetector::decode(const CMat& h, std::span<const cplx> y,
                                 double /*sigma2*/) {
  SD_TRACE_SPAN("decode");
  DecodeResult result;
  const Preprocessed pre = sd::preprocess(h, y, opts_.sorted_qr);
  result.stats.preprocess_seconds = pre.seconds;

  const index_t m = pre.r.rows();
  const index_t p = c_->order();
  const index_t full = std::min(opts_.full_levels, m);
  result.stats.tree_levels = static_cast<std::uint64_t>(m);

  Timer timer;

  std::uint64_t num_paths = 1;
  for (index_t i = 0; i < full; ++i) num_paths *= static_cast<std::uint64_t>(p);
  SD_CHECK(num_paths <= (1ull << 24), "FSD full-expansion too large");

  std::vector<index_t> path(static_cast<usize>(m), 0);
  std::vector<index_t> best_path;
  double best_pd = std::numeric_limits<double>::infinity();

  for (std::uint64_t pi = 0; pi < num_paths; ++pi) {
    // Decode the path id into the fully-enumerated top levels.
    std::uint64_t rem = pi;
    for (index_t d = 0; d < full; ++d) {
      path[static_cast<usize>(d)] = static_cast<index_t>(rem % p);
      rem /= static_cast<std::uint64_t>(p);
    }
    double pd = 0.0;
    // Top levels: charged as generated nodes.
    for (index_t d = 0; d < m; ++d) {
      const index_t a = m - 1 - d;
      cplx acc{0, 0};
      for (index_t t = 1; t <= d; ++t) {
        acc += pre.r(a, a + t) * c_->point(path[static_cast<usize>(d - t)]);
      }
      const cplx b = pre.ybar[static_cast<usize>(a)] - acc;
      if (d >= full) {
        // SIC tail: single sliced child.
        path[static_cast<usize>(d)] = c_->slice(b / pre.r(a, a));
      }
      pd += norm2(b - pre.r(a, a) * c_->point(path[static_cast<usize>(d)]));
      ++result.stats.nodes_generated;
    }
    ++result.stats.leaves_reached;
    if (pd < best_pd) {
      best_pd = pd;
      best_path = path;
      ++result.stats.radius_updates;
    }
  }
  result.stats.nodes_expanded = num_paths;

  std::vector<index_t> layered(static_cast<usize>(m));
  for (index_t d = 0; d < m; ++d) {
    layered[static_cast<usize>(m - 1 - d)] = best_path[static_cast<usize>(d)];
  }
  result.indices = to_antenna_order(pre, layered);
  result.metric = best_pd;
  result.stats.search_seconds = timer.elapsed_seconds();
  materialize_symbols(*c_, result);
  return result;
}

}  // namespace sd
