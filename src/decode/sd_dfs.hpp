// Classic depth-first sphere decoder with Schnorr-Euchner child ordering —
// the traversal strategy of Geosphere [14], implemented with scalar
// interference-cancellation arithmetic (BLAS-1/2 profile, memory-bound).
//
// Algorithmically it visits nodes in exactly the same order as the
// GEMM/Best-FS decoder (sorted children + LIFO == depth-first best-child
// descent), so the two must agree on the returned vector AND on node counts;
// the test suite enforces both. What differs is the arithmetic shape, which
// is what the paper's BLAS-3 refactoring is about — and what the WARP device
// model charges for in the Fig. 12 comparison.
#pragma once

#include "decode/detector.hpp"
#include "decode/sphere_common.hpp"

namespace sd {

class SdDfsDetector final : public Detector {
 public:
  explicit SdDfsDetector(const Constellation& constellation,
                         SdOptions options = {});

  [[nodiscard]] std::string_view name() const override { return "SD-DFS"; }

  [[nodiscard]] const SdOptions& options() const noexcept { return opts_; }

  [[nodiscard]] DecodeResult decode(const CMat& h, std::span<const cplx> y,
                                    double sigma2) override;

  /// Tree search on an already-preprocessed system (see SdGemmDetector).
  void search(const Preprocessed& pre, double sigma2, DecodeResult& result);

 private:
  const Constellation* c_;
  SdOptions opts_;
};

}  // namespace sd
