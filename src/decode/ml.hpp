// Exhaustive Maximum-Likelihood detector (paper Eq. 2).
//
// Enumerates all |Ω|^M candidate vectors; feasible only for small systems.
// It is the ground-truth oracle the test suite holds every sphere decoder to:
// an exact SD must return exactly the ML solution.
#pragma once

#include "decode/detector.hpp"

namespace sd {

class MlDetector final : public Detector {
 public:
  explicit MlDetector(const Constellation& constellation)
      : c_(&constellation) {}

  [[nodiscard]] std::string_view name() const override { return "ML"; }

  /// Throws sd::invalid_argument_error if |Ω|^M exceeds 2^26 candidates —
  /// beyond that the exhaustive search is a programming error, not a plan.
  [[nodiscard]] DecodeResult decode(const CMat& h, std::span<const cplx> y,
                                    double sigma2) override;

 private:
  const Constellation* c_;
};

}  // namespace sd
