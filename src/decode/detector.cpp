#include "decode/detector.hpp"

#include <string>

#include "common/error.hpp"
#include "linalg/gemm.hpp"
#include "linalg/norms.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace sd {

void DecodeStats::export_counters(obs::CounterRegistry& registry,
                                  std::string_view prefix) const {
  const std::string p = prefix.empty() ? "" : std::string(prefix) + ".";
  registry.set(p + "nodes_expanded", nodes_expanded);
  registry.set(p + "nodes_generated", nodes_generated);
  registry.set(p + "nodes_pruned", nodes_pruned);
  registry.set(p + "leaves_reached", leaves_reached);
  registry.set(p + "radius_updates", radius_updates);
  registry.set(p + "gemm_calls", gemm_calls);
  registry.set(p + "flops", flops);
  registry.set(p + "sort_ops", sort_ops);
  registry.set(p + "bytes_touched", bytes_touched);
  registry.set(p + "tree_levels", tree_levels);
  registry.set(p + "peak_list_size", peak_list_size);
  registry.set(p + "quant_saturations", quant_saturations);
  registry.set(p + "quant_overflows", quant_overflows);
  registry.set(p + "quant_requants", quant_requants);
  registry.set(p + "quant_fallbacks", quant_fallbacks);
  registry.set(p + "neumann_terms", neumann_terms);
  registry.set(p + "neumann_exact_solves", neumann_exact_solves);
  registry.set(p + "neumann_fallbacks", neumann_fallbacks);
  registry.set(p + "node_budget_hit", std::uint64_t{node_budget_hit ? 1u : 0u});
  registry.set(p + "preprocess_seconds", preprocess_seconds);
  registry.set(p + "search_seconds", search_seconds);
}

void Detector::decode_into(const CMat& h, std::span<const cplx> y,
                           double sigma2, DecodeResult& out) {
  out = decode(h, y, sigma2);
}

void Detector::decode_with(const PreprocessedChannel& prep,
                           std::span<const cplx> y, double sigma2,
                           DecodeResult& out) {
  // Base fallback: detectors without a cacheable phase (or handed a prep of
  // the wrong kind) decode from the shared channel matrix directly.
  decode_into(prep.channel.matrix(), y, sigma2, out);
}

void Detector::decode_batch_with(const PreprocessedChannel& prep,
                                 std::span<BatchItem> items) {
  for (BatchItem& item : items) {
    SD_CHECK(item.out != nullptr, "batch item missing an output slot");
    decode_with(prep, item.y, item.sigma2, *item.out);
  }
}

void Detector::decode_wide(std::span<WideItem> items) {
  for (WideItem& item : items) {
    SD_CHECK(item.prep != nullptr, "wide item missing a prepared channel");
    SD_CHECK(item.out != nullptr, "wide item missing an output slot");
    decode_with(*item.prep, item.y, item.sigma2, *item.out);
  }
}

double residual_metric(const CMat& h, std::span<const cplx> y,
                       std::span<const cplx> s) {
  SD_CHECK(h.rows() == static_cast<index_t>(y.size()), "y length mismatch");
  SD_CHECK(h.cols() == static_cast<index_t>(s.size()), "s length mismatch");
  CVec r(y.begin(), y.end());
  gemv(Op::kNone, cplx{-1, 0}, h, s, cplx{1, 0}, r);
  return norm2_sq(r);
}

void materialize_symbols(const Constellation& c, DecodeResult& result) {
  SD_TRACE_SPAN("decode.materialize");
  result.symbols.resize(result.indices.size());
  for (usize i = 0; i < result.indices.size(); ++i) {
    result.symbols[i] = c.point(result.indices[i]);
  }
}

}  // namespace sd
