#include "decode/detector.hpp"

#include "common/error.hpp"
#include "linalg/gemm.hpp"
#include "linalg/norms.hpp"

namespace sd {

double residual_metric(const CMat& h, std::span<const cplx> y,
                       std::span<const cplx> s) {
  SD_CHECK(h.rows() == static_cast<index_t>(y.size()), "y length mismatch");
  SD_CHECK(h.cols() == static_cast<index_t>(s.size()), "s length mismatch");
  CVec r(y.begin(), y.end());
  gemv(Op::kNone, cplx{-1, 0}, h, s, cplx{1, 0}, r);
  return norm2_sq(r);
}

void materialize_symbols(const Constellation& c, DecodeResult& result) {
  result.symbols.resize(result.indices.size());
  for (usize i = 0; i < result.indices.size(); ++i) {
    result.symbols[i] = c.point(result.indices[i]);
  }
}

}  // namespace sd
