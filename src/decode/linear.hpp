// Linear detectors (paper §I): Maximum Ratio Combining, Zero Forcing, and
// Minimum Mean Square Error. Low complexity, poor BER — the lower bar every
// sphere decoder is compared against in Fig. 12.
#pragma once

#include "decode/detector.hpp"

namespace sd {

/// Which linear equalizer to apply before slicing.
enum class LinearKind { kMrc, kZf, kMmse };

[[nodiscard]] std::string_view linear_kind_name(LinearKind kind) noexcept;

/// Equalize-and-slice detector: s_hat = slice(W y) with W chosen per kind.
class LinearDetector final : public Detector {
 public:
  LinearDetector(LinearKind kind, const Constellation& constellation)
      : kind_(kind), c_(&constellation) {}

  [[nodiscard]] std::string_view name() const override {
    return linear_kind_name(kind_);
  }

  [[nodiscard]] DecodeResult decode(const CMat& h, std::span<const cplx> y,
                                    double sigma2) override;

  /// ZF's equalizer W depends only on H, so it is cacheable. MMSE's W also
  /// depends on sigma2 (a per-frame input) and MRC has no setup worth
  /// caching, so both stay kNone.
  [[nodiscard]] PrepKind prep_kind() const noexcept override {
    return kind_ == LinearKind::kZf ? PrepKind::kZf : PrepKind::kNone;
  }

  /// ZF decode against a cached equalizer; bit-identical to decode().
  void decode_with(const PreprocessedChannel& prep, std::span<const cplx> y,
                   double sigma2, DecodeResult& out) override;

 private:
  LinearKind kind_;
  const Constellation* c_;
};

}  // namespace sd
