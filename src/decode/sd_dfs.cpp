#include "decode/sd_dfs.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace sd {

namespace {

struct Child {
  index_t symbol;
  real pd;  ///< cumulative PD including this child's increment
};

std::uint64_t sort_cost(usize p) noexcept {
  if (p < 2) return 0;
  const auto logp = static_cast<std::uint64_t>(std::bit_width(p - 1));
  return static_cast<std::uint64_t>(p) * logp;
}

}  // namespace

SdDfsDetector::SdDfsDetector(const Constellation& constellation,
                             SdOptions options)
    : c_(&constellation), opts_(options) {}

DecodeResult SdDfsDetector::decode(const CMat& h, std::span<const cplx> y,
                                   double sigma2) {
  SD_TRACE_SPAN("decode");
  DecodeResult result;
  const Preprocessed pre = sd::preprocess(h, y, opts_.sorted_qr);
  result.stats.preprocess_seconds = pre.seconds;
  search(pre, sigma2, result);
  materialize_symbols(*c_, result);
  return result;
}

void SdDfsDetector::search(const Preprocessed& pre, double sigma2,
                           DecodeResult& result) {
  SD_TRACE_SPAN("decode.search");
  const index_t m = pre.r.rows();
  const index_t p = c_->order();
  result.stats.tree_levels = static_cast<std::uint64_t>(m);

  Timer timer;

  // Per-depth traversal state: the SE-ordered children and a cursor.
  struct Level {
    std::vector<Child> ordered;
    usize next = 0;
  };
  std::vector<Level> levels(static_cast<usize>(m));
  for (auto& lvl : levels) lvl.ordered.reserve(static_cast<usize>(p));

  std::vector<index_t> path(static_cast<usize>(m), 0);
  std::vector<index_t> best_path(static_cast<usize>(m), 0);
  double best_pd = std::numeric_limits<double>::infinity();
  bool found_leaf = false;

  double radius_sq = initial_radius_sq(opts_, sigma2, m);

  // Enters depth `d`: evaluates and SE-orders all children of the current
  // path prefix. Returns the parent's cumulative PD for this prefix.
  auto enter_depth = [&](index_t d, real parent_pd) {
    const index_t a = m - 1 - d;
    ++result.stats.nodes_expanded;
    result.stats.nodes_generated += static_cast<std::uint64_t>(p);

    cplx interference{0, 0};
    for (index_t t = 1; t <= d; ++t) {
      interference +=
          pre.r(a, a + t) * c_->point(path[static_cast<usize>(d - t)]);
    }
    const cplx b = pre.ybar[static_cast<usize>(a)] - interference;
    const cplx raa = pre.r(a, a);

    Level& lvl = levels[static_cast<usize>(d)];
    lvl.ordered.clear();
    lvl.next = 0;
    for (index_t sym = 0; sym < p; ++sym) {
      lvl.ordered.push_back(
          Child{sym, parent_pd + norm2(b - raa * c_->point(sym))});
    }
    std::sort(lvl.ordered.begin(), lvl.ordered.end(),
              [](const Child& x, const Child& y2) { return x.pd < y2.pd; });
    result.stats.sort_ops += sort_cost(static_cast<usize>(p));
    result.stats.bytes_touched +=
        sizeof(cplx) * static_cast<std::uint64_t>(m - a);
  };

  for (int attempt = 0;; ++attempt) {
    index_t depth = 0;
    std::vector<real> parent_pd(static_cast<usize>(m), real{0});
    enter_depth(0, real{0});

    while (depth >= 0) {
      if (result.stats.nodes_expanded >= opts_.max_nodes) {
        result.stats.node_budget_hit = true;
        break;
      }
      Level& lvl = levels[static_cast<usize>(depth)];
      if (lvl.next >= lvl.ordered.size()) {
        --depth;  // exhausted: backtrack
        continue;
      }
      const Child child = lvl.ordered[lvl.next++];
      if (static_cast<double>(child.pd) >= radius_sq) {
        // SE ordering: every remaining sibling is at least as bad.
        result.stats.nodes_pruned +=
            static_cast<std::uint64_t>(lvl.ordered.size() - lvl.next + 1);
        lvl.next = lvl.ordered.size();
        --depth;
        continue;
      }
      path[static_cast<usize>(depth)] = child.symbol;
      if (depth == m - 1) {
        ++result.stats.leaves_reached;
        radius_sq = static_cast<double>(child.pd);
        best_pd = radius_sq;
        best_path = path;
        found_leaf = true;
        ++result.stats.radius_updates;
        // Stay at this depth; the cursor moves to the next-best sibling.
        continue;
      }
      parent_pd[static_cast<usize>(depth + 1)] = child.pd;
      ++depth;
      enter_depth(depth, child.pd);
    }

    if (found_leaf || result.stats.node_budget_hit ||
        opts_.radius_policy == RadiusPolicy::kInfinite) {
      break;
    }
    radius_sq *= 2.0;
    SD_ASSERT(attempt < 64);
  }

  if (!found_leaf) {
    // Babai fallback, as in the Best-FS decoder.
    double pd = 0.0;
    for (index_t d = 0; d < m; ++d) {
      const index_t a = m - 1 - d;
      cplx acc{0, 0};
      for (index_t t = 1; t <= d; ++t) {
        acc += pre.r(a, a + t) * c_->point(best_path[static_cast<usize>(d - t)]);
      }
      const cplx b = pre.ybar[static_cast<usize>(a)] - acc;
      const index_t sym = c_->slice(b / pre.r(a, a));
      best_path[static_cast<usize>(d)] = sym;
      pd += norm2(b - pre.r(a, a) * c_->point(sym));
    }
    best_pd = pd;
  }

  std::vector<index_t> layered(static_cast<usize>(m));
  for (index_t d = 0; d < m; ++d) {
    layered[static_cast<usize>(m - 1 - d)] = best_path[static_cast<usize>(d)];
  }
  result.indices = to_antenna_order(pre, layered);
  result.metric = best_pd;
  result.stats.search_seconds = timer.elapsed_seconds();
}

}  // namespace sd
