// Soft-output sphere decoding (list sphere decoder).
//
// Coded links want per-bit reliabilities, not hard decisions. The list
// sphere decoder runs the same Best-FS search as the paper's detector but
// keeps the L best leaf candidates instead of only the incumbent; the
// sphere radius tracks the L-th best metric, so pruning stays effective.
// Max-log LLRs are then formed from the candidate list (Vikalo, Hassibi &
// Kailath — the paper's ref. [11] — style iterative receivers build on
// exactly this detector output).
#pragma once

#include <vector>

#include "decode/detector.hpp"
#include "decode/sphere_common.hpp"

namespace sd {

struct ListSdOptions {
  SdOptions base = {};
  usize list_size = 32;    ///< candidates kept (L)
  double llr_clamp = 12.0; ///< magnitude cap when a bit hypothesis is missing
};

/// Hard decisions plus per-bit log-likelihood ratios.
struct SoftDecodeResult {
  DecodeResult hard;          ///< best candidate (identical to the plain SD)
  std::vector<double> llrs;   ///< length M * bits_per_symbol; positive = bit 0
  usize candidates = 0;       ///< list entries actually collected
};

class ListSphereDecoder {
 public:
  explicit ListSphereDecoder(const Constellation& constellation,
                             ListSdOptions options = {});

  [[nodiscard]] const ListSdOptions& options() const noexcept { return opts_; }

  [[nodiscard]] SoftDecodeResult decode_soft(const CMat& h,
                                             std::span<const cplx> y,
                                             double sigma2);

  /// The candidate list of the last decode_soft call, expanded to
  /// antenna-order bit labels. Retained so an iterative receiver can
  /// recompute LLRs under updated priors without re-running the search
  /// (the LSD receiver structure of the paper's ref. [11]).
  struct CandidateList {
    std::vector<double> metrics;  ///< ||y - Hs||^2 per candidate
    std::vector<std::vector<std::uint8_t>> bits;  ///< per-candidate labels
    usize bits_per_vector = 0;
  };
  [[nodiscard]] const CandidateList& last_candidates() const noexcept {
    return last_;
  }

  /// Max-log LLRs from the stored candidate list with a-priori LLRs on the
  /// transmitted bits (empty = uniform). Candidate cost becomes
  /// metric/sigma2 + sum_b cost(bit | prior_b).
  [[nodiscard]] std::vector<double> llrs_from_list(
      std::span<const double> priors, double sigma2) const;

 private:
  const Constellation* c_;
  ListSdOptions opts_;
  CandidateList last_;
};

}  // namespace sd
