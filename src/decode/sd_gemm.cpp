#include "decode/sd_gemm.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"
#include "linalg/gemm.hpp"

namespace sd {

namespace {

/// Comparison-count model for sorting a batch of p children. The FPGA uses a
/// bitonic network; on the CPU std::sort is O(p log p). We charge the
/// canonical p*ceil(log2 p) so counts are deterministic across platforms.
std::uint64_t sort_cost(usize p) noexcept {
  if (p < 2) return 0;
  const auto logp = static_cast<std::uint64_t>(std::bit_width(p - 1));
  return static_cast<std::uint64_t>(p) * logp;
}

}  // namespace

SdGemmDetector::SdGemmDetector(const Constellation& constellation,
                               SdOptions options)
    : c_(&constellation), opts_(options) {}

DecodeResult SdGemmDetector::decode(const CMat& h, std::span<const cplx> y,
                                    double sigma2) {
  DecodeResult result;
  decode_into(h, y, sigma2, result);
  return result;
}

void SdGemmDetector::decode_into(const CMat& h, std::span<const cplx> y,
                                 double sigma2, DecodeResult& out) {
  SD_TRACE_SPAN("decode");
  out.reset();
  preprocess_into(h, y, opts_.sorted_qr, scratch_.prep, scratch_.pre);
  out.stats.preprocess_seconds = scratch_.pre.seconds;
  search(scratch_.pre, sigma2, out);
  materialize_symbols(*c_, out);
}

void SdGemmDetector::decode_with(const PreprocessedChannel& prep,
                                 std::span<const cplx> y, double sigma2,
                                 DecodeResult& out) {
  if (prep.kind != prep_kind()) {
    Detector::decode_with(prep, y, sigma2, out);
    return;
  }
  SD_TRACE_SPAN("decode");
  out.reset();
  preprocess_with_channel(prep, y, scratch_.prep, scratch_.pre);
  out.stats.preprocess_seconds = scratch_.pre.seconds;
  search(scratch_.pre, sigma2, out);
  materialize_symbols(*c_, out);
}

void SdGemmDetector::search(const Preprocessed& pre, double sigma2,
                            DecodeResult& result) {
  SD_TRACE_SPAN("decode.search");
  const index_t m = pre.r.rows();
  SD_CHECK(static_cast<index_t>(pre.ybar.size()) == m, "ybar length mismatch");
  const index_t p = c_->order();
  result.stats.tree_levels = static_cast<std::uint64_t>(m);

  Timer timer;

  // The tree state database (paper Fig. 5). Soft capacity on CPU; the peak
  // per-level occupancy feeds the URAM sizing model. All working state lives
  // in detector-owned scratch so repeat decodes allocate nothing.
  MetaStateTable& mst = scratch_.mst(m, 1024);
  TreeList<ScratchNode>& open = scratch_.open;
  open.clear();

  double radius_sq = initial_radius_sq(opts_, sigma2, m);
  // With a finite (noise-scaled) radius the sphere can be empty; the standard
  // remedy — also used by the BFS/GPU variant [1] — is to enlarge and retry.
  bool found_leaf = false;
  std::vector<index_t>& best_path = scratch_.best_path;
  best_path.assign(static_cast<usize>(m), 0);
  double best_pd = std::numeric_limits<double>::infinity();

  const bool row0 = opts_.level_gemm == LevelGemm::kRow0;
  std::vector<index_t>& path = scratch_.path;
  path.assign(static_cast<usize>(m), 0);
  std::vector<ScratchChild>& children = scratch_.children;
  children.resize(static_cast<usize>(p));
  std::vector<ScratchChild>& survivors = scratch_.survivors;
  survivors.reserve(static_cast<usize>(p));
  std::vector<ScratchNode>& batch = scratch_.batch;
  batch.reserve(static_cast<usize>(p));

  // Expands the node `parent_id` (kRootId = the virtual root) whose path
  // symbols for depths [0, depth) are already in `path` and whose PD is
  // `parent_pd`. Children live at depth `depth`, i.e. antenna a = m-1-depth.
  auto expand = [&](NodeId parent_id, index_t depth, real parent_pd) {
    const index_t a = m - 1 - depth;
    ++result.stats.nodes_expanded;
    result.stats.nodes_generated += static_cast<std::uint64_t>(p);

    if (opts_.gemm_eval) {
      // Phase 2, GEMM form (the BLAS-2 -> BLAS-3 refactoring of [1]): the
      // whole trailing R block R[a:m, a:m] is multiplied by the tree-state
      // matrix S whose columns are the P candidate blocks (new symbol on
      // top, parent path below) — "a block of the tree state matrix is
      // multiplied by its corresponding block in the channel matrix"
      // (paper §III-A2). Only row a is new information (the rows below
      // re-derive the parent's contributions), so the PD increment reads
      // row 0 of z; the redundant rows are the regularity the compute-bound
      // refactoring trades for accelerator-friendly GEMM shapes.
      const index_t k = m - a;  // trailing block size
      // Operands live in detector-owned scratch (reshape keeps capacity;
      // a_block rows are rewritten in full, s_mat / z fully overwritten).
      // LevelGemm::kRow0 forms only row 0 of the product — the row the PD
      // loop reads — with bit-identical values; see sphere_common.hpp.
      const index_t zr = row0 ? 1 : k;
      CMat& a_block = scratch_.a_block;
      a_block.reshape(zr, k);
      for (index_t r2 = 0; r2 < zr; ++r2) {
        for (index_t t = 0; t < r2; ++t) a_block(r2, t) = cplx{0, 0};
        for (index_t t = r2; t < k; ++t) {
          a_block(r2, t) = pre.r(a + r2, a + t);
        }
      }
      CMat& s_mat = scratch_.s_mat;
      s_mat.reshape(k, p);
      for (index_t col = 0; col < p; ++col) s_mat(0, col) = c_->point(col);
      for (index_t t = 1; t < k; ++t) {
        // Column a+t of R corresponds to the symbol decided at depth
        // m-1-(a+t) = depth - t.
        const cplx sym = c_->point(path[static_cast<usize>(depth - t)]);
        for (index_t col = 0; col < p; ++col) s_mat(t, col) = sym;
      }
      CMat& z = scratch_.z;
      z.reshape(zr, p);
      gemm(Op::kNone, cplx{1, 0}, a_block, s_mat, cplx{0, 0}, z,
           scratch_.gemm_ws);
      ++result.stats.gemm_calls;
      result.stats.flops += gemm_flops(zr, p, k);
      result.stats.bytes_touched +=
          sizeof(cplx) * (static_cast<std::uint64_t>(zr) * k +
                          static_cast<std::uint64_t>(k) * p +
                          static_cast<std::uint64_t>(zr) * p);
      const cplx target = pre.ybar[static_cast<usize>(a)];
      for (index_t col = 0; col < p; ++col) {
        children[static_cast<usize>(col)] = {
            col, parent_pd + norm2(target - z(0, col))};
      }
    } else {
      // Scalar (ablation) form: shared interference term once, then one
      // complex MAC per child — the memory-bound BLAS-2 profile.
      cplx interference{0, 0};
      for (index_t t = 1; t <= depth; ++t) {
        interference +=
            pre.r(a, a + t) * c_->point(path[static_cast<usize>(depth - t)]);
      }
      const cplx b = pre.ybar[static_cast<usize>(a)] - interference;
      const cplx raa = pre.r(a, a);
      for (index_t col = 0; col < p; ++col) {
        children[static_cast<usize>(col)] = {
            col, parent_pd + norm2(b - raa * c_->point(col))};
      }
      result.stats.bytes_touched +=
          sizeof(cplx) * static_cast<std::uint64_t>(m - a);
    }

    // Phase 3: prune against the radius.
    survivors.clear();
    for (const ScratchChild& ch : children) {
      if (static_cast<double>(ch.pd) < radius_sq) {
        survivors.push_back(ch);
      } else {
        ++result.stats.nodes_pruned;
      }
    }
    if (survivors.empty()) return;

    std::sort(survivors.begin(), survivors.end(),
              [](const ScratchChild& x, const ScratchChild& y2) {
                return x.pd < y2.pd;
              });
    result.stats.sort_ops += sort_cost(static_cast<usize>(p));

    if (depth == m - 1) {
      // Leaf level: the best surviving child inside the radius becomes the
      // new incumbent and shrinks the sphere (Alg. 1 lines 7-9).
      const ScratchChild& best_child = survivors.front();
      ++result.stats.leaves_reached;
      // Its siblings can no longer beat the shrunken radius.
      result.stats.nodes_pruned += survivors.size() - 1;
      radius_sq = static_cast<double>(best_child.pd);
      best_pd = radius_sq;
      best_path = path;
      best_path[static_cast<usize>(depth)] = best_child.symbol;
      found_leaf = true;
      ++result.stats.radius_updates;
      return;
    }

    // Interior level: commit survivors to the MST, push in sorted order.
    batch.clear();
    for (const ScratchChild& ch : survivors) {
      const NodeId id = mst.insert(depth, MstNode{parent_id, ch.symbol, ch.pd});
      batch.push_back(ScratchNode{id, ch.pd});
    }
    open.push_sorted_batch(std::span<const ScratchNode>(batch));
  };

  for (int attempt = 0;; ++attempt) {
    mst.reset();
    open.clear();
    expand(kRootId, 0, real{0});

    while (!open.empty()) {
      if (result.stats.nodes_expanded >= opts_.max_nodes) {
        result.stats.node_budget_hit = true;
        break;
      }
      const ScratchNode entry = open.pop();
      // Lazy pruning: the radius may have shrunk since this node was pushed.
      if (static_cast<double>(entry.pd) >= radius_sq) {
        ++result.stats.nodes_pruned;
        continue;
      }
      const index_t depth = MetaStateTable::level_of(entry.id) + 1;
      mst.path_symbols(entry.id, path);
      expand(entry.id, depth, entry.pd);
    }

    result.stats.peak_list_size =
        std::max<std::uint64_t>(result.stats.peak_list_size, open.peak_size());

    if (found_leaf || result.stats.node_budget_hit ||
        opts_.radius_policy == RadiusPolicy::kInfinite) {
      break;
    }
    // Empty sphere under the noise-scaled radius: double and retry.
    radius_sq *= 2.0;
    SD_ASSERT(attempt < 64);
  }

  if (!found_leaf) {
    // Budget exhausted before any leaf: fall back to the Babai (successive
    // interference cancellation) point so the detector always answers.
    double pd = 0.0;
    for (index_t depth = 0; depth < m; ++depth) {
      const index_t a = m - 1 - depth;
      cplx acc{0, 0};
      for (index_t t = 1; t <= depth; ++t) {
        acc += pre.r(a, a + t) *
               c_->point(best_path[static_cast<usize>(depth - t)]);
      }
      const cplx b = pre.ybar[static_cast<usize>(a)] - acc;
      const index_t sym = c_->slice(b / pre.r(a, a));
      best_path[static_cast<usize>(depth)] = sym;
      pd += norm2(b - pre.r(a, a) * c_->point(sym));
    }
    best_pd = pd;
  }

  // Depth d decided antenna (column) m-1-d; flip to column order, then undo
  // any SQRD permutation.
  std::vector<index_t>& layered = scratch_.layered;
  layered.resize(static_cast<usize>(m));
  for (index_t depth = 0; depth < m; ++depth) {
    layered[static_cast<usize>(m - 1 - depth)] =
        best_path[static_cast<usize>(depth)];
  }
  to_antenna_order_into(pre, layered, result.indices);
  result.metric = best_pd;
  result.stats.search_seconds = timer.elapsed_seconds();
}

}  // namespace sd
