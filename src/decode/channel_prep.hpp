// Coherence-block channel reuse: shared channel handles, cacheable
// per-channel preprocessing, and a bounded preprocessing cache.
//
// The decode cost of every detector splits into a per-CHANNEL part (QR or
// sorted QR of H, or the linear equalizer W) and a per-FRAME part (ybar =
// Q^H y plus the tree search). Block-fading uplinks hold H fixed over a
// coherence interval, so the serving stack can pay the channel part once per
// interval instead of once per frame. Three pieces make that safe:
//
//  - ChannelHandle: an immutable, refcounted H plus a content fingerprint.
//    Frames sharing a channel share ONE allocation through every queue hop
//    (FrameRequest used to deep-copy the dense matrix per hop).
//  - PreprocessedChannel: the channel-only factorization output for one
//    detector family (PrepKind). Frame state (ybar) is NOT in here — it is
//    derived per frame by preprocess_with_channel() in sphere_common.
//  - ChannelPrepCache: a sharded-mutex, bounded-LRU map from (fingerprint,
//    kind) to a shared PreprocessedChannel. Hits verify the stored matrix
//    really equals the requested one (fingerprints can collide), so a
//    collision degrades to a rebuild, never to wrong bits.
//
// Bit-exactness: the cached factorization runs the exact same code
// (QrFactorization::factor / qr_sorted / zf_equalizer) on the exact same H
// bytes as the uncached per-frame path, so every downstream PD, metric, and
// golden constant is unchanged. See DESIGN.md §12.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "quant/quant_spec.hpp"

namespace sd {

/// FNV-1a over the matrix dimensions and element bytes. Deterministic across
/// runs and platforms with identical doubles; equal matrices always get equal
/// fingerprints, unequal ones collide with probability ~2^-64 (and collisions
/// are handled by content verification in the cache, not assumed away).
[[nodiscard]] std::uint64_t channel_fingerprint(const CMat& h) noexcept;

/// Immutable shared channel estimate: refcounted H + content fingerprint.
/// Copying a handle shares the matrix storage; the dense data is allocated
/// exactly once no matter how many frames or queue hops reference it.
class ChannelHandle {
 public:
  ChannelHandle() = default;

  /// Takes ownership of `h` and fingerprints it eagerly (one O(N*M) pass;
  /// amortized over every frame of the coherence block sharing the handle).
  explicit ChannelHandle(CMat h);

  /// Test-only escape hatch: attach an arbitrary fingerprint, e.g. to force
  /// two distinct matrices onto one cache key and exercise collision
  /// handling deterministically.
  ChannelHandle(CMat h, std::uint64_t fingerprint);

  [[nodiscard]] bool valid() const noexcept { return h_ != nullptr; }
  [[nodiscard]] const CMat& matrix() const;
  [[nodiscard]] std::uint64_t fingerprint() const noexcept { return fp_; }

  /// True iff both handles reference the same underlying allocation — the
  /// O(1) fast path for "same channel" checks along the coherent run.
  [[nodiscard]] bool same_storage(const ChannelHandle& other) const noexcept {
    return h_ != nullptr && h_ == other.h_;
  }

  [[nodiscard]] long use_count() const noexcept { return h_.use_count(); }

 private:
  std::shared_ptr<const CMat> h_;
  std::uint64_t fp_ = 0;
};

/// Which channel-only factorization a detector needs. One cache entry per
/// (channel, kind): a BFS detector with sorted_qr and a linear ZF fallback
/// draw different prep objects from the same cache without clashing.
enum class PrepKind : std::uint8_t {
  kNone,      ///< detector has no cacheable channel-only phase
  kQrPlain,   ///< Householder QR (plain layer order)
  kQrSorted,  ///< SQRD: sorted QR + explicit thin Q + permutation
  kZf,        ///< zero-forcing equalizer W = (H^H H)^-1 H^H
  // Quantized variants: the SAME factorization as their float counterpart
  // (so the per-frame ybar path is shared), plus the int16-calibrated R
  // planes in `qprep`. Appended so existing kind values — and therefore
  // every existing cache key — are unchanged.
  kQrPlainQuant,   ///< kQrPlain + QuantSpec-calibrated int16 R
  kQrSortedQuant,  ///< kQrSorted + QuantSpec-calibrated int16 R
  // Appended (cache keys mix the kind value, so existing keys are stable):
  kGramMmse,  ///< Gram matrix G = H^H H for the Neumann/Cholesky MMSE tier
};

[[nodiscard]] std::string_view prep_kind_name(PrepKind kind) noexcept;

/// The channel-only half of detection preprocessing, computed once per
/// coherence block and shared (read-only) by every frame that uses it.
struct PreprocessedChannel {
  ChannelHandle channel;
  PrepKind kind = PrepKind::kNone;

  // kQrPlain: the full factorization object (R + compact reflectors), so the
  // per-frame ybar = Q^H y applies reflectors without forming Q.
  QrFactorization qr;

  // kQrSorted: explicit thin Q, R, and the layer->antenna permutation.
  CMat q;
  CMat r;
  std::vector<index_t> perm;

  // kZf: the equalizer matrix.
  CMat w;

  // kGramMmse: the Gram matrix G = H^H H (M x M, Hermitian PSD). sigma2 is a
  // per-FRAME input, so the regularized A = G + sigma2 I and its factorization
  // are formed per frame from this channel-only part (DESIGN.md §17).
  CMat g;

  // kQrPlainQuant / kQrSortedQuant: the per-channel fixed-point calibration
  // and quantized R planes, derived from the float factorization above.
  quant::QuantChannelPrep qprep;

  double build_seconds = 0.0;  ///< measured channel-only factorization time
};

/// Runs the channel-only factorization for `kind` on the handle's matrix.
/// This is THE single construction path — cache misses and direct calls
/// produce byte-identical prep objects because they are the same code.
[[nodiscard]] std::shared_ptr<const PreprocessedChannel> build_channel_prep(
    const ChannelHandle& channel, PrepKind kind);

/// Sharded, bounded-LRU cache of PreprocessedChannel keyed on
/// (fingerprint, kind) with content verification on hit.
///
/// Concurrency: lookups take one shard mutex; builds run OUTSIDE the lock
/// (two lanes racing on the same key may both build — the results are
/// bit-identical, one wins the insert, the loser's copy is dropped). Cached
/// prep objects are immutable after construction, so concurrent readers
/// need no further synchronization.
class ChannelPrepCache {
 public:
  struct Options {
    usize capacity = 64;  ///< total entries across shards (LRU per shard)
    usize shards = 4;     ///< mutex shards (keyed by fingerprint)
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t collisions = 0;  ///< fingerprint matched, content did not
  };

  ChannelPrepCache() : ChannelPrepCache(Options{}) {}
  explicit ChannelPrepCache(Options options);
  ~ChannelPrepCache();

  /// Returns the cached prep for (channel, kind), building and inserting it
  /// on miss. `hit` (optional) reports whether the factorization was reused.
  [[nodiscard]] std::shared_ptr<const PreprocessedChannel> get_or_build(
      const ChannelHandle& channel, PrepKind kind, bool* hit = nullptr);

  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  struct Shard;
  Options opts_;
  std::vector<std::unique_ptr<Shard>> shards_;

  [[nodiscard]] Shard& shard_for(std::uint64_t fp) const;
};

}  // namespace sd
