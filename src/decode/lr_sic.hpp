// Lattice-reduction-aided successive interference cancellation.
//
// QAM symbols are scaled/shifted Gaussian integers, so detection can run in
// an LLL-reduced channel basis where plain rounding is near-ML: transform
// y to the integer lattice, SIC-detect in the reduced basis, multiply by T
// and clamp back onto the constellation grid. Polynomial complexity with
// far better BER than plain linear detection on ill-conditioned channels —
// the classic alternative the sphere-decoder literature benchmarks against.
#pragma once

#include "decode/detector.hpp"
#include "decode/sphere_common.hpp"

namespace sd {

class LrSicDetector final : public Detector {
 public:
  /// Square-QAM only (the Gaussian-integer mapping needs both axes).
  explicit LrSicDetector(const Constellation& constellation,
                         double lll_delta = 0.75);

  [[nodiscard]] std::string_view name() const override { return "LR-SIC"; }

  [[nodiscard]] DecodeResult decode(const CMat& h, std::span<const cplx> y,
                                    double sigma2) override;

 private:
  const Constellation* c_;
  double delta_;
  int levels_ = 0;      ///< per-axis amplitude levels L
  real axis_scale_ = 1; ///< constellation grid spacing / 2
};

}  // namespace sd
