#include "decode/linear.hpp"

#include "common/error.hpp"
#include "common/timer.hpp"
#include "linalg/gemm.hpp"
#include "linalg/norms.hpp"
#include "linalg/solve.hpp"
#include "obs/trace.hpp"
#include "mimo/frame.hpp"

namespace sd {

std::string_view linear_kind_name(LinearKind kind) noexcept {
  switch (kind) {
    case LinearKind::kMrc: return "MRC";
    case LinearKind::kZf: return "ZF";
    case LinearKind::kMmse: return "MMSE";
  }
  return "?";
}

DecodeResult LinearDetector::decode(const CMat& h, std::span<const cplx> y,
                                    double sigma2) {
  SD_TRACE_SPAN("decode");
  SD_CHECK(h.rows() == static_cast<index_t>(y.size()), "y length mismatch");
  DecodeResult result;
  const index_t m = h.cols();

  Timer pre_timer;
  CVec est(static_cast<usize>(m), cplx{0, 0});
  switch (kind_) {
    case LinearKind::kMrc: {
      // Per-stream matched filter: s_i = h_i^H y / ||h_i||^2. Ignores
      // inter-stream interference entirely (hence its poor BER for M > 1).
      result.stats.preprocess_seconds = pre_timer.elapsed_seconds();
      Timer search_timer;
      for (index_t j = 0; j < m; ++j) {
        cplx dot{0, 0};
        double colnorm = 0.0;
        for (index_t i = 0; i < h.rows(); ++i) {
          dot += std::conj(h(i, j)) * y[static_cast<usize>(i)];
          colnorm += norm2(h(i, j));
        }
        est[static_cast<usize>(j)] = dot / static_cast<real>(colnorm);
      }
      result.stats.search_seconds = search_timer.elapsed_seconds();
      break;
    }
    case LinearKind::kZf:
    case LinearKind::kMmse: {
      const CMat w = (kind_ == LinearKind::kZf)
                         ? zf_equalizer(h)
                         : mmse_equalizer(h, static_cast<real>(sigma2));
      result.stats.preprocess_seconds = pre_timer.elapsed_seconds();
      Timer search_timer;
      gemv(Op::kNone, cplx{1, 0}, w, y, cplx{0, 0}, est);
      result.stats.search_seconds = search_timer.elapsed_seconds();
      break;
    }
  }

  result.indices = hard_slice(*c_, est);
  materialize_symbols(*c_, result);
  result.metric = residual_metric(h, y, result.symbols);
  return result;
}

void LinearDetector::decode_with(const PreprocessedChannel& prep,
                                 std::span<const cplx> y, double sigma2,
                                 DecodeResult& out) {
  if (kind_ != LinearKind::kZf || prep.kind != PrepKind::kZf) {
    Detector::decode_with(prep, y, sigma2, out);
    return;
  }
  SD_TRACE_SPAN("decode");
  const CMat& h = prep.channel.matrix();
  SD_CHECK(h.rows() == static_cast<index_t>(y.size()), "y length mismatch");
  out.reset();
  // The equalizer was paid once at prep build time (prep.build_seconds); the
  // per-frame cost is just the W y product and the slice.
  CVec est(static_cast<usize>(h.cols()), cplx{0, 0});
  Timer search_timer;
  gemv(Op::kNone, cplx{1, 0}, prep.w, y, cplx{0, 0}, est);
  out.stats.search_seconds = search_timer.elapsed_seconds();
  out.indices = hard_slice(*c_, est);
  materialize_symbols(*c_, out);
  out.metric = residual_metric(h, y, out.symbols);
}

}  // namespace sd
