// Gram-domain MMSE detector with Neumann-series approximate inversion for
// asymmetric (tall) massive-MIMO channels, after Wu et al. (arXiv:1403.5711).
//
// For N_r >> N_t the regularized Gram matrix A = H^H H + sigma2 I is strongly
// diagonally dominant, so A^{-1} can be approximated by a K-term Neumann
// series around the diagonal split A = D + E. The channel-only part (the Gram
// matrix G = H^H H) is cacheable across a coherence block (PrepKind::kGramMmse);
// the per-frame work reduces to one matched-filter GEMV plus K small
// Jacobi sweeps — no tree search at all. See DESIGN.md §17.
#pragma once

#include "decode/detector.hpp"

namespace sd {

/// Tuning for the Neumann/Jacobi approximate solve.
struct MmseNeumannOptions {
  /// Series terms (Jacobi sweeps). k = 0 selects the exact Cholesky solve of
  /// A x = y_mf on every frame (the "exact MMSE" reference configuration).
  usize k = 3;
  /// Relative-residual guard: after the series, if ||A x - y_mf|| / ||y_mf||
  /// exceeds this, the frame deterministically falls back to the exact
  /// Cholesky solve (counted in DecodeStats::neumann_fallbacks). The default
  /// is a DIVERGENCE detector, not an accuracy gate: on tall channels the
  /// converging series lands well under it (measured <= ~0.8 worst-case even
  /// at N_r/N_t = 4, shrinking with k), while on square/ill-conditioned
  /// channels the Jacobi iteration diverges and the residual exceeds 1 and
  /// grows with k. Tighten via the "tol=" spec option to trade fallbacks for
  /// accuracy.
  double residual_tol = 0.9;
};

/// Two-phase MMSE detector: preprocess() builds G = H^H H once per channel;
/// decode_with() forms A = G + sigma2 I (cached across frames that share the
/// same channel AND sigma2), solves A s = H^H y approximately (or exactly),
/// and slices. decode()/decode_into() recompute G with the identical GEMM, so
/// cached and one-shot decodes agree bit-for-bit.
class MmseNeumannDetector final : public Detector {
 public:
  MmseNeumannDetector(const MmseNeumannOptions& options,
                      const Constellation& constellation)
      : opts_(options), c_(&constellation) {}

  [[nodiscard]] std::string_view name() const override {
    return "MMSE-Neumann";
  }

  [[nodiscard]] DecodeResult decode(const CMat& h, std::span<const cplx> y,
                                    double sigma2) override;

  void decode_into(const CMat& h, std::span<const cplx> y, double sigma2,
                   DecodeResult& out) override;

  [[nodiscard]] PrepKind prep_kind() const noexcept override {
    return PrepKind::kGramMmse;
  }

  void decode_with(const PreprocessedChannel& prep, std::span<const cplx> y,
                   double sigma2, DecodeResult& out) override;

  [[nodiscard]] const MmseNeumannOptions& options() const noexcept {
    return opts_;
  }

 private:
  /// Shared tail after A is in a_: matched filter, solve, slice, metric.
  void solve_and_slice(const CMat& h, std::span<const cplx> y,
                       DecodeResult& out);
  /// Forms A = g + sigma2 I and 1/diag(A) into the scratch arena, reusing
  /// the previous frame's A (and any Cholesky factor of it) when the
  /// (channel, sigma2) pair is unchanged.
  void prepare_system(const CMat& g, double sigma2, std::uint64_t fingerprint);
  void solve_exact(DecodeStats& stats);

  MmseNeumannOptions opts_;
  const Constellation* c_;

  // Per-(channel, sigma2) cached system. cache_fp_ == 0 means invalid; the
  // Gram data pointer guards against fingerprint reuse across distinct
  // matrices (one-shot decodes always invalidate instead).
  std::uint64_t cache_fp_ = 0;
  double cache_sigma2_ = 0.0;
  const cplx* cache_gdata_ = nullptr;
  bool have_l_ = false;  ///< l_ currently holds the Cholesky factor of a_

  // Scratch arena (reshape/assign only — allocation-free at the high-water
  // mark, pinned by tests/test_alloc_free.cpp).
  CMat g_;                  ///< one-shot Gram scratch (decode_into path)
  CMat a_;                  ///< A = G + sigma2 I
  CMat l_;                  ///< Cholesky factor of A (exact path / fallback)
  std::vector<real> dinv_;  ///< 1 / diag(A) (the diagonal is real by construction)
  CVec ymf_;                ///< matched filter H^H y
  CVec x_;                  ///< current iterate / solution
  CVec xn_;                 ///< next Jacobi iterate
  CVec rn_;                 ///< series residual A x - y_mf (length M)
};

}  // namespace sd
