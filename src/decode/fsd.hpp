// Fixed-complexity Sphere Decoder (Barbero & Thompson, paper ref. [9]).
//
// FSD trades ML optimality for a fully deterministic, embarrassingly
// parallel workload: the first `full_levels` tree levels are expanded
// exhaustively (|Omega|^full_levels sub-paths) and every sub-path is then
// completed by successive interference cancellation (one slicing decision
// per remaining level). No radius, no data-dependent control flow — which is
// why related work likes it for massively parallel hardware, and why its
// resource demand scales with the constellation (§II-C). Included as a
// related-work ablation point.
#pragma once

#include "decode/detector.hpp"
#include "decode/sphere_common.hpp"

namespace sd {

struct FsdOptions {
  index_t full_levels = 1;  ///< levels expanded exhaustively from the root
  bool sorted_qr = true;    ///< FSD conventionally relies on channel ordering
};

class FsdDetector final : public Detector {
 public:
  explicit FsdDetector(const Constellation& constellation,
                       FsdOptions options = {});

  [[nodiscard]] std::string_view name() const override { return "FSD"; }

  [[nodiscard]] DecodeResult decode(const CMat& h, std::span<const cplx> y,
                                    double sigma2) override;

 private:
  const Constellation* c_;
  FsdOptions opts_;
};

}  // namespace sd
