#include "decode/soft_output.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace sd {

namespace {

struct Candidate {
  double metric;
  std::vector<index_t> path;  ///< depth-ordered symbols
};

struct CandidateWorse {
  bool operator()(const Candidate& a, const Candidate& b) const {
    return a.metric < b.metric;  // max-heap: worst candidate on top
  }
};

}  // namespace

ListSphereDecoder::ListSphereDecoder(const Constellation& constellation,
                                     ListSdOptions options)
    : c_(&constellation), opts_(options) {
  SD_CHECK(opts_.list_size >= 1, "list size must be at least 1");
  SD_CHECK(opts_.llr_clamp > 0.0, "LLR clamp must be positive");
}

SoftDecodeResult ListSphereDecoder::decode_soft(const CMat& h,
                                                std::span<const cplx> y,
                                                double sigma2) {
  SoftDecodeResult out;
  const Preprocessed pre = sd::preprocess(h, y, opts_.base.sorted_qr);
  out.hard.stats.preprocess_seconds = pre.seconds;

  const index_t m = pre.r.rows();
  const index_t p = c_->order();
  out.hard.stats.tree_levels = static_cast<std::uint64_t>(m);
  Timer timer;

  // Bounded candidate list: a max-heap so the worst current member defines
  // the pruning radius once the list is full.
  std::priority_queue<Candidate, std::vector<Candidate>, CandidateWorse> list;
  auto radius_sq = [&]() {
    if (list.size() < opts_.list_size) {
      return initial_radius_sq(opts_.base, sigma2, m);
    }
    return list.top().metric;
  };

  // Depth-first search with SE child ordering, as in SdDfsDetector, but
  // leaves feed the candidate list instead of shrinking to a single best.
  struct Level {
    std::vector<std::pair<index_t, real>> ordered;  // (symbol, cumulative pd)
    usize next = 0;
  };
  std::vector<Level> levels(static_cast<usize>(m));
  std::vector<index_t> path(static_cast<usize>(m), 0);

  auto enter_depth = [&](index_t d, real parent_pd) {
    const index_t a = m - 1 - d;
    ++out.hard.stats.nodes_expanded;
    out.hard.stats.nodes_generated += static_cast<std::uint64_t>(p);
    cplx interference{0, 0};
    for (index_t t = 1; t <= d; ++t) {
      interference +=
          pre.r(a, a + t) * c_->point(path[static_cast<usize>(d - t)]);
    }
    const cplx b = pre.ybar[static_cast<usize>(a)] - interference;
    Level& lvl = levels[static_cast<usize>(d)];
    lvl.ordered.clear();
    lvl.next = 0;
    for (index_t sym = 0; sym < p; ++sym) {
      lvl.ordered.emplace_back(
          sym, parent_pd + norm2(b - pre.r(a, a) * c_->point(sym)));
    }
    std::sort(lvl.ordered.begin(), lvl.ordered.end(),
              [](const auto& x, const auto& y2) { return x.second < y2.second; });
  };

  index_t depth = 0;
  enter_depth(0, real{0});
  while (depth >= 0) {
    if (out.hard.stats.nodes_expanded >= opts_.base.max_nodes) {
      out.hard.stats.node_budget_hit = true;
      break;
    }
    Level& lvl = levels[static_cast<usize>(depth)];
    if (lvl.next >= lvl.ordered.size()) {
      --depth;
      continue;
    }
    const auto [sym, pd] = lvl.ordered[lvl.next++];
    if (static_cast<double>(pd) >= radius_sq()) {
      out.hard.stats.nodes_pruned +=
          static_cast<std::uint64_t>(lvl.ordered.size() - lvl.next + 1);
      lvl.next = lvl.ordered.size();
      --depth;
      continue;
    }
    path[static_cast<usize>(depth)] = sym;
    if (depth == m - 1) {
      ++out.hard.stats.leaves_reached;
      list.push(Candidate{static_cast<double>(pd), path});
      if (list.size() > opts_.list_size) list.pop();
      continue;
    }
    ++depth;
    enter_depth(depth, pd);
  }

  SD_CHECK(!list.empty(), "list sphere decoder found no leaf");
  // Drain the heap into a vector (ascending metric at the end).
  std::vector<Candidate> candidates;
  candidates.reserve(list.size());
  while (!list.empty()) {
    candidates.push_back(list.top());
    list.pop();
  }
  std::reverse(candidates.begin(), candidates.end());
  out.candidates = candidates.size();

  // Hard output = best candidate, converted to antenna order.
  const Candidate& best = candidates.front();
  std::vector<index_t> layered(static_cast<usize>(m));
  for (index_t d = 0; d < m; ++d) {
    layered[static_cast<usize>(m - 1 - d)] = best.path[static_cast<usize>(d)];
  }
  out.hard.indices = to_antenna_order(pre, layered);
  out.hard.metric = best.metric;
  materialize_symbols(*c_, out.hard);

  // Persist the candidate list (antenna-order bit labels) and derive the
  // max-log LLRs from it; iterative receivers re-use last_ with priors.
  const int bits = c_->bits_per_symbol();
  last_.metrics.clear();
  last_.bits.clear();
  last_.bits_per_vector = static_cast<usize>(m) * static_cast<usize>(bits);
  std::vector<std::uint8_t> bit_buf(static_cast<usize>(bits));
  for (const Candidate& cand : candidates) {
    std::vector<index_t> cand_layered(static_cast<usize>(m));
    for (index_t d = 0; d < m; ++d) {
      cand_layered[static_cast<usize>(m - 1 - d)] =
          cand.path[static_cast<usize>(d)];
    }
    const std::vector<index_t> cand_ant = to_antenna_order(pre, cand_layered);
    std::vector<std::uint8_t> labels(last_.bits_per_vector);
    for (index_t ant = 0; ant < m; ++ant) {
      c_->index_to_bits(cand_ant[static_cast<usize>(ant)], bit_buf);
      for (int b = 0; b < bits; ++b) {
        labels[static_cast<usize>(ant) * static_cast<usize>(bits) +
               static_cast<usize>(b)] = bit_buf[static_cast<usize>(b)];
      }
    }
    last_.metrics.push_back(cand.metric);
    last_.bits.push_back(std::move(labels));
  }
  out.llrs = llrs_from_list({}, sigma2);

  out.hard.stats.search_seconds = timer.elapsed_seconds();
  return out;
}

std::vector<double> ListSphereDecoder::llrs_from_list(
    std::span<const double> priors, double sigma2) const {
  SD_CHECK(!last_.metrics.empty(), "no candidate list: call decode_soft first");
  SD_CHECK(priors.empty() || priors.size() == last_.bits_per_vector,
           "prior length must match bits per vector");
  std::vector<double> llrs(last_.bits_per_vector, 0.0);

  // Candidate cost under priors: Euclidean term plus the a-priori bit costs
  // (half-scale convention: cost(b) = b ? +L/2 : -L/2).
  std::vector<double> cost(last_.metrics.size());
  for (usize ci = 0; ci < last_.metrics.size(); ++ci) {
    double acc = last_.metrics[ci] / sigma2;
    if (!priors.empty()) {
      for (usize b = 0; b < last_.bits_per_vector; ++b) {
        const double half = priors[b] * 0.5;
        acc += last_.bits[ci][b] ? half : -half;
      }
    }
    cost[ci] = acc;
  }

  for (usize b = 0; b < last_.bits_per_vector; ++b) {
    double best0 = std::numeric_limits<double>::infinity();
    double best1 = std::numeric_limits<double>::infinity();
    for (usize ci = 0; ci < cost.size(); ++ci) {
      if (last_.bits[ci][b] == 0) {
        best0 = std::min(best0, cost[ci]);
      } else {
        best1 = std::min(best1, cost[ci]);
      }
    }
    // Clamp the *extrinsic* part (what the list adds beyond the prior):
    // clamping the a-posteriori directly would let a strong prior flip the
    // sign of (LLR - prior) in iterative receivers.
    const double prior = priors.empty() ? 0.0 : priors[b];
    double extrinsic;
    if (!std::isfinite(best0)) {
      extrinsic = -opts_.llr_clamp;
    } else if (!std::isfinite(best1)) {
      extrinsic = opts_.llr_clamp;
    } else {
      extrinsic = std::clamp(best1 - best0 - prior, -opts_.llr_clamp,
                             opts_.llr_clamp);
    }
    llrs[b] = prior + extrinsic;
  }
  return llrs;
}

}  // namespace sd
