// The paper's primary contribution (CPU reference implementation):
// a GEMM-based sphere decoder with Best-First-Search tree traversal.
//
// Structure follows the paper's Algorithm 1 + §III:
//  - Phase 1 (Branching): a popped node generates P = |Ω| children, one per
//    constellation symbol of the next transmit antenna.
//  - Phase 2 (Evaluation): the children's partial distances are computed in
//    one batched matrix product — the corresponding row block of R times the
//    children's tree-state matrix — followed by a norm against ybar. This is
//    the BLAS-2 -> BLAS-3 refactoring adopted from Arfaoui et al. [1].
//  - Phase 3 (Pruning): children outside the sphere radius are cut; survivors
//    are sorted by PD and inserted into the tree list so the best child is
//    popped first (LIFO), which is the Best-FS strategy adopted from
//    Geosphere [14]. Reaching a leaf shrinks the radius (Alg. 1 line 8).
//
// The search tree lives in a Meta State Table, exactly as on the FPGA.
#pragma once

#include "decode/decode_scratch.hpp"
#include "decode/detector.hpp"
#include "decode/mst.hpp"
#include "decode/sphere_common.hpp"

namespace sd {

class SdGemmDetector final : public Detector {
 public:
  explicit SdGemmDetector(const Constellation& constellation,
                          SdOptions options = {});

  [[nodiscard]] std::string_view name() const override {
    return opts_.gemm_eval ? "SD-GEMM-BestFS" : "SD-Scalar-BestFS";
  }

  [[nodiscard]] const SdOptions& options() const noexcept { return opts_; }

  [[nodiscard]] DecodeResult decode(const CMat& h, std::span<const cplx> y,
                                    double sigma2) override;

  /// Primary entry point: allocation-free in steady state (the scratch and
  /// `out` reach their high-water capacity and are then recycled).
  void decode_into(const CMat& h, std::span<const cplx> y, double sigma2,
                   DecodeResult& out) override;

  /// Channel-split phase: the QR (plain or SQRD per options) is cacheable.
  [[nodiscard]] PrepKind prep_kind() const noexcept override {
    return opts_.sorted_qr ? PrepKind::kQrSorted : PrepKind::kQrPlain;
  }

  /// Decode against a cached factorization; allocation-free in steady state
  /// and bit-identical to decode_into() on the same channel.
  void decode_with(const PreprocessedChannel& prep, std::span<const cplx> y,
                   double sigma2, DecodeResult& out) override;

  /// Runs the tree search on an already-preprocessed triangular system.
  /// Exposed so the FPGA pipeline simulator can drive the identical search
  /// while charging hardware cycles. Stats are accumulated into `result`.
  void search(const Preprocessed& pre, double sigma2, DecodeResult& result);

 private:
  const Constellation* c_;
  SdOptions opts_;
  DecodeScratch scratch_;
};

}  // namespace sd
