// Quickstart: decode one received MIMO vector with the paper's GEMM/Best-FS
// sphere decoder and compare against the linear MMSE baseline.
//
//   ./quickstart [--m=10] [--mod=4qam] [--snr=8] [--seed=1]
#include <cstdio>

#include "common/cli.hpp"
#include "core/sphere_decoder.hpp"
#include "mimo/scenario.hpp"

int main(int argc, char** argv) {
  using namespace sd;
  const Cli cli(argc, argv);
  const auto m = static_cast<index_t>(cli.get_int_or("m", 10));
  const Modulation mod = parse_modulation(cli.get_or("mod", "4qam"));
  const double snr_db = cli.get_double_or("snr", 8.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 1));

  // 1. Describe the system and draw one Monte-Carlo trial (channel, noise,
  //    random payload) — in a real deployment h and y come from the radio.
  ScenarioConfig sc;
  sc.num_tx = m;
  sc.num_rx = m;
  sc.modulation = mod;
  sc.snr_db = snr_db;
  sc.seed = seed;
  Scenario scenario(sc);
  const Trial trial = scenario.next();
  std::printf("system: %s\n", sc.label().c_str());

  // 2. Build the paper's detector through the public facade and decode.
  const SystemConfig sys{m, m, mod};
  auto sphere = make_detector(sys, DecoderSpec{});
  const DecodeResult result = sphere->decode(trial.h, trial.y, trial.sigma2);

  // 3. Compare with the transmitted ground truth.
  int symbol_errors = 0;
  for (usize i = 0; i < result.indices.size(); ++i) {
    if (result.indices[i] != trial.tx.indices[i]) ++symbol_errors;
  }
  std::printf("sphere decoder : metric=%.4f, symbol errors=%d/%d\n",
              result.metric, symbol_errors, m);
  std::printf("  search stats : %llu nodes expanded, %llu generated, "
              "%llu pruned, %llu leaves, %llu GEMMs\n",
              static_cast<unsigned long long>(result.stats.nodes_expanded),
              static_cast<unsigned long long>(result.stats.nodes_generated),
              static_cast<unsigned long long>(result.stats.nodes_pruned),
              static_cast<unsigned long long>(result.stats.leaves_reached),
              static_cast<unsigned long long>(result.stats.gemm_calls));
  std::printf("  decode time  : %.1f us (preprocess %.1f us)\n",
              result.stats.search_seconds * 1e6,
              result.stats.preprocess_seconds * 1e6);

  // 4. The MMSE baseline on the identical input, for contrast.
  DecoderSpec mmse_spec;
  mmse_spec.strategy = Strategy::kMmse;
  auto mmse = make_detector(sys, mmse_spec);
  const DecodeResult lin = mmse->decode(trial.h, trial.y, trial.sigma2);
  int lin_errors = 0;
  for (usize i = 0; i < lin.indices.size(); ++i) {
    if (lin.indices[i] != trial.tx.indices[i]) ++lin_errors;
  }
  std::printf("MMSE baseline  : metric=%.4f, symbol errors=%d/%d\n",
              lin.metric, lin_errors, m);

  // 5. Same decode on the simulated Alveo U280 design: identical answer,
  //    simulated device latency.
  DecoderSpec fpga_spec;
  fpga_spec.device = TargetDevice::kFpgaOptimized;
  auto fpga = make_detector(sys, fpga_spec);
  const DecodeResult hw = fpga->decode(trial.h, trial.y, trial.sigma2);
  std::printf("FPGA (U280 sim): %s answer, simulated latency %.1f us\n",
              hw.indices == result.indices ? "identical" : "DIFFERENT",
              hw.stats.search_seconds * 1e6);
  return 0;
}
