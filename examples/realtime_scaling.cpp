// Real-time scaling study: how many antennas can each platform afford while
// staying inside the 10 ms real-time budget at a given SNR? This is the
// deployment question the paper's §IV-D answers (CPU breaks at 15x15 while
// the FPGA scales to 20x20).
//
//   ./realtime_scaling [--mod=4qam] [--snr=8] [--trials=5]
//                      [--max-antennas=20] [--budget-ms=10]
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace sd;
  const Cli cli(argc, argv);
  const Modulation mod = parse_modulation(cli.get_or("mod", "4qam"));
  const double snr = cli.get_double_or("snr", 8.0);
  const auto trials = static_cast<usize>(cli.get_int_or("trials", 5));
  const auto max_m = static_cast<index_t>(cli.get_int_or("max-antennas", 20));
  const double budget_s = cli.get_double_or("budget-ms", 10.0) * 1e-3;

  std::printf("real-time scaling: %s @ %.0f dB, budget %.1f ms, %zu "
              "trials/config\n",
              std::string(modulation_name(mod)).c_str(), snr, budget_s * 1e3,
              trials);

  Table t({"antennas", "CPU (ms)", "CPU ok", "FPGA-opt (ms)", "FPGA ok",
           "mean nodes"});
  index_t cpu_limit = 0, fpga_limit = 0;
  for (index_t m = 4; m <= max_m; m += 2) {
    const SystemConfig sys{m, m, mod};
    ExperimentRunner runner(sys, trials, 77);
    DecoderSpec cpu_spec;
    cpu_spec.sd.max_nodes = 2'000'000;
    auto cpu = make_detector(sys, cpu_spec);
    DecoderSpec fpga_spec = cpu_spec;
    fpga_spec.device = TargetDevice::kFpgaOptimized;
    auto fpga = make_detector(sys, fpga_spec);

    const SweepPoint p_cpu = runner.run_point(*cpu, snr);
    const SweepPoint p_fpga = runner.run_point(*fpga, snr);
    const bool cpu_ok = p_cpu.mean_seconds <= budget_s;
    const bool fpga_ok = p_fpga.mean_seconds <= budget_s;
    if (cpu_ok) cpu_limit = m;
    if (fpga_ok) fpga_limit = m;
    t.add_row({std::to_string(m) + "x" + std::to_string(m),
               fmt(p_cpu.mean_seconds * 1e3, 3), cpu_ok ? "yes" : "NO",
               fmt(p_fpga.mean_seconds * 1e3, 3), fpga_ok ? "yes" : "NO",
               fmt(p_fpga.mean_nodes_expanded, 0)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("largest real-time configuration: CPU %dx%d, FPGA %dx%d\n",
              cpu_limit, cpu_limit, fpga_limit, fpga_limit);
  return 0;
}
