// Real-time scaling study: how many antennas can a platform afford while
// staying inside the 10 ms real-time budget at a given SNR? This is the
// deployment question the paper's §IV-D answers (CPU breaks at 15x15 while
// the FPGA scales to 20x20).
//
//   ./realtime_scaling [--detector=cpu-sd|parallel-sd|fpga|fpga-opt]...
//                      [--threads=N] [--mod=4qam] [--snr=8] [--trials=5]
//                      [--max-antennas=20] [--budget-ms=10]
//
// --detector may be given as a comma-separated list to compare platforms
// side by side (default: cpu-sd,fpga-opt — the paper's comparison).
// --threads selects the worker count for parallel-sd (0 = all cores).
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

namespace {

// Builds the spec for one named platform of the study.
sd::DecoderSpec platform_spec(const std::string& name, unsigned threads) {
  sd::DecoderSpec spec;
  spec.sd.max_nodes = 2'000'000;
  if (name == "cpu-sd") {
    // defaults: Best-FS GEMM on the host
  } else if (name == "parallel-sd") {
    spec.strategy = sd::Strategy::kMultiPe;
    spec.multi_pe.base = spec.sd;
    spec.multi_pe.num_threads = threads;
  } else if (name == "fpga") {
    spec.device = sd::TargetDevice::kFpgaBaseline;
  } else if (name == "fpga-opt") {
    spec.device = sd::TargetDevice::kFpgaOptimized;
  } else {
    throw sd::invalid_argument_error(
        "unknown --detector '" + name +
        "' (cpu-sd, parallel-sd, fpga, fpga-opt)");
  }
  return spec;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto comma = text.find(',', pos);
    const std::string item = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sd;
  const Cli cli(argc, argv);
  const Modulation mod = parse_modulation(cli.get_or("mod", "4qam"));
  const double snr = cli.get_double_or("snr", 8.0);
  const auto trials = static_cast<usize>(cli.get_int_or("trials", 5));
  const auto max_m = static_cast<index_t>(cli.get_int_or("max-antennas", 20));
  const double budget_s = cli.get_double_or("budget-ms", 10.0) * 1e-3;
  const auto threads = static_cast<unsigned>(cli.get_int_or("threads", 0));
  const std::vector<std::string> detectors =
      split_csv(cli.get_or("detector", "cpu-sd,fpga-opt"));
  if (detectors.empty()) {
    std::fprintf(stderr, "--detector needs at least one platform\n");
    return 1;
  }

  std::printf("real-time scaling: %s @ %.0f dB, budget %.1f ms, %zu "
              "trials/config\n",
              std::string(modulation_name(mod)).c_str(), snr, budget_s * 1e3,
              trials);

  std::vector<std::string> headers{"antennas"};
  for (const std::string& d : detectors) {
    headers.push_back(d + " (ms)");
    headers.push_back(d + " ok");
  }
  headers.push_back("mean nodes");
  Table t(headers);
  std::vector<index_t> limits(detectors.size(), 0);
  for (index_t m = 4; m <= max_m; m += 2) {
    const SystemConfig sys{m, m, mod};
    std::vector<std::string> row{std::to_string(m) + "x" + std::to_string(m)};
    double nodes = 0.0;
    for (usize d = 0; d < detectors.size(); ++d) {
      // Same runner (same seed) per platform, so every column decodes the
      // identical trial stream and the comparison is paired.
      ExperimentRunner runner(sys, trials, 77);
      auto det = make_detector(sys, platform_spec(detectors[d], threads));
      const SweepPoint p = runner.run_point(*det, snr);
      const bool ok = p.mean_seconds <= budget_s;
      if (ok) limits[d] = m;
      row.push_back(fmt(p.mean_seconds * 1e3, 3));
      row.push_back(ok ? "yes" : "NO");
      nodes = p.mean_nodes_expanded;
    }
    row.push_back(fmt(nodes, 0));
    t.add_row(row);
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("largest real-time configuration:");
  for (usize d = 0; d < detectors.size(); ++d) {
    std::printf(" %s %dx%d%s", detectors[d].c_str(), limits[d], limits[d],
                d + 1 < detectors.size() ? "," : "\n");
  }
  return 0;
}
