// Energy report: per-decode energy of CPU vs simulated FPGA for a set of
// configurations — the deployment-cost question behind the paper's Table II
// (remote base stations run on tight power budgets).
//
//   ./energy_report [--snr=8] [--trials=5] [--decodes-per-second=1000]
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "fpga/power.hpp"
#include "platform/cpu_model.hpp"

int main(int argc, char** argv) {
  using namespace sd;
  const Cli cli(argc, argv);
  const double snr = cli.get_double_or("snr", 8.0);
  const auto trials = static_cast<usize>(cli.get_int_or("trials", 5));
  const double rate = cli.get_double_or("decodes-per-second", 1000.0);

  struct Config {
    index_t m;
    Modulation mod;
  };
  const std::vector<Config> configs{{10, Modulation::kQam4},
                                    {15, Modulation::kQam4},
                                    {20, Modulation::kQam4},
                                    {10, Modulation::kQam16}};

  std::printf("energy report @ %.0f dB, %zu trials/config, station load "
              "%.0f decodes/s\n",
              snr, trials, rate);

  Table t({"config", "CPU mJ/decode", "FPGA mJ/decode", "reduction",
           "CPU station W", "FPGA station W"});
  std::vector<double> reductions;
  for (const Config& cfg : configs) {
    const SystemConfig sys{cfg.m, cfg.m, cfg.mod};
    ExperimentRunner runner(sys, trials, 99);
    DecoderSpec cpu_spec;
    cpu_spec.sd.max_nodes = 2'000'000;
    auto cpu = make_detector(sys, cpu_spec);
    DecoderSpec fpga_spec = cpu_spec;
    fpga_spec.device = TargetDevice::kFpgaOptimized;
    auto fpga = make_detector(sys, fpga_spec);

    const double t_cpu = runner.run_point(*cpu, snr).mean_seconds;
    const double t_fpga = runner.run_point(*fpga, snr).mean_seconds;
    const double e_cpu = cpu_energy_joules(cfg.m, cfg.mod, t_cpu);
    const double e_fpga = fpga_energy_joules(
        FpgaConfig::optimized_design(cfg.m, cfg.m, cfg.mod), t_fpga);
    reductions.push_back(e_cpu / e_fpga);

    // Average station power if the platform decodes `rate` vectors/s and
    // idles (at model static power) otherwise.
    const double duty_cpu = std::min(1.0, rate * t_cpu);
    const double duty_fpga = std::min(1.0, rate * t_fpga);
    const double station_cpu =
        cpu_power_watts(cfg.m, cfg.mod) * duty_cpu + 70.0 * (1 - duty_cpu);
    const double station_fpga =
        fpga_power_watts(FpgaConfig::optimized_design(cfg.m, cfg.m, cfg.mod)) *
            duty_fpga +
        5.0 * (1 - duty_fpga);

    t.add_row({std::to_string(cfg.m) + "x" + std::to_string(cfg.m) + " " +
                   std::string(modulation_name(cfg.mod)),
               fmt(e_cpu * 1e3, 4), fmt(e_fpga * 1e3, 4),
               fmt_factor(e_cpu / e_fpga), fmt(station_cpu, 1),
               fmt(station_fpga, 1)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("geo-mean energy reduction: %s (paper Table II: 38.1x)\n",
              fmt_factor(geomean(reductions)).c_str());
  return 0;
}
