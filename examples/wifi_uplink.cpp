// Capstone example: a complete 802.11-flavoured uplink receive chain.
//
//   multipath channel -> pilot burst -> LMMSE channel estimation ->
//   per-subcarrier sphere decoding (simulated FPGA or CPU) ->
//   soft LLRs -> deinterleave -> Viterbi -> packet check
//
//   ./wifi_uplink [--snr=10] [--frames=5] [--subcarriers=64]
//                 [--pilot-slots=16] [--platform=cpu|fpga]
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "code/convolutional.hpp"
#include "code/interleaver.hpp"
#include "decode/soft_output.hpp"
#include "fpga/multi_pipeline.hpp"
#include "mimo/estimation.hpp"
#include "mimo/ofdm.hpp"

int main(int argc, char** argv) {
  using namespace sd;
  const Cli cli(argc, argv);
  const double snr = cli.get_double_or("snr", 10.0);
  const auto frames = static_cast<usize>(cli.get_int_or("frames", 5));
  const auto subcarriers =
      static_cast<index_t>(cli.get_int_or("subcarriers", 64));
  const auto pilot_slots = static_cast<index_t>(cli.get_int_or("pilot-slots", 16));
  const std::string platform = cli.get_or("platform", "fpga");

  OfdmConfig ofdm;
  ofdm.subcarriers = subcarriers;
  ofdm.num_taps = 4;
  ofdm.num_tx = 4;
  ofdm.num_rx = 4;
  ofdm.modulation = Modulation::kQam4;
  OfdmLink link(ofdm, 2026);
  const Constellation& c = link.constellation();
  const int bits_per_symbol = c.bits_per_symbol();
  const usize bits_per_frame = static_cast<usize>(subcarriers) * ofdm.num_tx *
                               static_cast<usize>(bits_per_symbol);

  ConvolutionalCode code;
  // Choose a payload that fills the frame exactly after rate-1/2 coding.
  const usize info_bits = bits_per_frame / 2 - static_cast<usize>(code.memory());
  Interleaver interleaver(bits_per_frame, 99);
  GaussianSource payload_rng(7);
  GaussianSource pilot_rng(8);

  std::printf("wifi-style uplink: %d subcarriers, 4x4 %s, %zu info bits per "
              "frame, %s detection\n",
              subcarriers, std::string(c.name()).c_str(), info_bits,
              platform.c_str());

  Table t({"frame", "est. MSE", "raw sym errors", "info bit errors",
           "packet", "detect latency (ms)"});
  usize packets_ok = 0;
  for (usize fi = 0; fi < frames; ++fi) {
    // --- Transmit side.
    std::vector<std::uint8_t> info(info_bits);
    for (auto& b : info) b = static_cast<std::uint8_t>(payload_rng.next_index(2));
    std::vector<std::uint8_t> coded = code.encode(info);
    coded = interleaver.interleave(coded);

    const MultipathChannel channel = link.draw_channel();
    OfdmLink::TxFrame tx;
    tx.carriers.reserve(static_cast<usize>(subcarriers));
    std::vector<std::uint8_t> bit_buf(static_cast<usize>(bits_per_symbol));
    usize cursor = 0;
    for (index_t f = 0; f < subcarriers; ++f) {
      std::vector<index_t> idx(static_cast<usize>(ofdm.num_tx));
      for (index_t a = 0; a < ofdm.num_tx; ++a) {
        for (int b = 0; b < bits_per_symbol; ++b) {
          bit_buf[static_cast<usize>(b)] = coded[cursor++];
        }
        idx[static_cast<usize>(a)] = c.bits_to_index(bit_buf);
      }
      tx.carriers.push_back(modulate(c, idx));
    }
    const OfdmLink::RxFrame rx = link.transmit(channel, tx, snr);

    // --- Channel estimation from a pilot burst on each subcarrier's H.
    const CMat pilots = orthogonal_pilots(pilot_slots, ofdm.num_tx);
    std::vector<CMat> h_est;
    double mse = 0;
    h_est.reserve(rx.h.size());
    for (const CMat& h : rx.h) {
      const CMat y_pilot = receive_pilots(h, pilots, rx.sigma2, pilot_rng);
      h_est.push_back(estimate_lmmse(pilots, y_pilot, rx.sigma2));
      mse += estimation_mse(h, h_est.back());
    }
    mse /= static_cast<double>(rx.h.size());

    // --- Detection: soft list-SD per subcarrier; device latency depends on
    //     the chosen platform.
    ListSphereDecoder soft_sd(c);
    std::vector<double> llrs(bits_per_frame);
    usize raw_errors = 0;
    double latency_ms = 0;
    Timer cpu_timer;
    std::vector<Preprocessed> batch;
    for (index_t f = 0; f < subcarriers; ++f) {
      const SoftDecodeResult r = soft_sd.decode_soft(
          h_est[static_cast<usize>(f)], rx.y[static_cast<usize>(f)], rx.sigma2);
      for (usize b = 0; b < r.llrs.size(); ++b) {
        llrs[static_cast<usize>(f) * r.llrs.size() + b] = r.llrs[b];
      }
      for (usize a = 0; a < r.hard.indices.size(); ++a) {
        if (r.hard.indices[a] !=
            tx.carriers[static_cast<usize>(f)].indices[a]) {
          ++raw_errors;
        }
      }
      batch.push_back(
          preprocess(h_est[static_cast<usize>(f)], rx.y[static_cast<usize>(f)],
                     false));
    }
    if (platform == "fpga") {
      MultiPipelineFpga pool(
          FpgaConfig::optimized_design(ofdm.num_tx, ofdm.num_rx,
                                       ofdm.modulation),
          2);
      latency_ms =
          pool.decode_batch(batch, c, rx.sigma2).makespan_seconds * 1e3;
    } else {
      latency_ms = cpu_timer.elapsed_ms();
    }

    // --- Outer decoding.
    const std::vector<double> deinterleaved =
        interleaver.deinterleave(std::span<const double>(llrs));
    const std::vector<std::uint8_t> decoded = code.decode_llr(deinterleaved);
    usize info_errors = 0;
    for (usize i = 0; i < info.size(); ++i) {
      if (decoded[i] != info[i]) ++info_errors;
    }
    if (info_errors == 0) ++packets_ok;
    t.add_row({std::to_string(fi), fmt_sci(mse), std::to_string(raw_errors),
               std::to_string(info_errors), info_errors == 0 ? "OK" : "LOST",
               fmt(latency_ms, 3)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("packets delivered: %zu/%zu\n", packets_ok, frames);
  return 0;
}
