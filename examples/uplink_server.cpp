// Uplink detection server demo — in-process soak or real network ingress.
//
//   in-process (default): stream seeded frames through the serving runtime
//   and print the operator's view — throughput, tail latency, deadline
//   misses, shed load, per-worker utilization.
//
//   ./uplink_server [--backend=sphere] [--precision=int16|fp32]
//                   [--m=10] [--mod=4qam] [--snr=8]
//                   [--frames=200] [--seed=1] [--coherence=1] [--cells=1]
//                   [--mode=closed|open] [--window=8] [--rate=500]
//                   [--server=workers=4,batch=4,queue=64,policy=block,deadline-ms=10]
//                   [--backends=cpu:4,fpga:2] [--placement=cost-aware]
//                   [--cost-model-in=model.json] [--cost-model-out=model.json]
//                   [--metrics-json=metrics.json] [--trace=trace.json]
//
//   network ingress (--ingress=tcp|uds|net): bind real listeners, shard the
//   serving stack by cell id, and serve frames sent by uplink_client over
//   the wire protocol (DESIGN.md §13), with per-shard admission control:
//
//   ./uplink_server --ingress=uds [--uds=/tmp/spheredec_uplink.sock]
//   ./uplink_server --ingress=tcp [--port=0] [--shards=2] [--admission=on]
//                   [--duration=10] [--metrics-json=metrics.json]
//
//   --ingress=net binds both TCP and UDS. --duration=S exits after S
//   seconds; 0 (default) serves until SIGINT/SIGTERM. Either way shutdown
//   is graceful: listeners close, in-flight frames drain, and the final
//   metrics/trace files are still written. A second signal force-exits.
//
// The --server= option list accepts: workers=N, batch=N, queue=N,
// policy=block|reject|drop-oldest, deadline-ms=X, no-fallback, the wide
// former keys (wide-width=N, no-cross-lane-fuse), and the
// dispatch keys (placement=, fpga-rtt-ms=, no-degrade, deterministic-cost).
// --backends switches on the heterogeneous pool ("cpu:4,fpga:2:rtt-ms=1",
// see DESIGN.md §8); the pool spec is comma-separated so it gets its own
// flag instead of riding in --server. --precision=int16 maps the lane
// detectors onto the fixed-point BFS datapath (DESIGN.md §15; requires
// --backend=bfs), equivalent to --backend=bfs:precision=int16;
// --precision=fp32 is the default float datapath. --cost-model-in starts the dispatcher
// from a previously exported calibration; --cost-model-out persists this
// run's calibration for the next.
// --metrics-json dumps the full ServerMetrics snapshot as a flat JSON
// counter object; --trace enables span tracing for the run and writes a
// chrome://tracing file (open it at chrome://tracing or ui.perfetto.dev).
// Examples:
//   ./uplink_server --backend=sphere@fpga --server=workers=4,deadline-ms=1
//   ./uplink_server --mode=open --rate=2000 --server=workers=2,policy=drop-oldest,queue=8,deadline-ms=5
//   ./uplink_server --backends=cpu:2,fpga:2 --mode=open --rate=2000 --server=deadline-ms=5
//   ./uplink_server --ingress=uds --shards=2 --duration=5 --metrics-json=metrics.json
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/spec_parse.hpp"
#include "net/ingress.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "serve/load_generator.hpp"

namespace {

std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) {
  // First signal: graceful drain. Second: the operator means it.
  if (g_stop.exchange(true)) std::_Exit(130);
}

void install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

void print_metrics_tables(const sd::serve::ServerMetrics& mx) {
  using namespace sd;
  using namespace sd::serve;
  Table counts({"submitted", "completed", "expired", "evicted", "rejected",
                "misses", "lost"});
  counts.add_row({std::to_string(mx.submitted), std::to_string(mx.completed),
                  std::to_string(mx.expired_fallback + mx.expired_dropped),
                  std::to_string(mx.evicted), std::to_string(mx.rejected),
                  std::to_string(mx.deadline_misses),
                  std::to_string(mx.submitted - mx.accounted())});
  std::fputs(counts.render().c_str(), stdout);

  Table lat({"latency", "count", "mean (ms)", "p50 (ms)", "p95 (ms)",
             "p99 (ms)", "max (ms)"},
            {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
             Align::kRight, Align::kRight, Align::kRight});
  const auto row = [&](const char* name, const LatencySummary& s) {
    lat.add_row({name, std::to_string(s.count), fmt(s.mean_s * 1e3, 3),
                 fmt(s.p50_s * 1e3, 3), fmt(s.p95_s * 1e3, 3),
                 fmt(s.p99_s * 1e3, 3), fmt(s.max_s * 1e3, 3)});
  };
  row("queue wait", mx.queue_wait);
  row("service", mx.service);
  row("end-to-end", mx.e2e);
  std::fputs(lat.render().c_str(), stdout);
  std::printf("\nthroughput: %.0f frames/s over %.3f s\n", mx.throughput_fps,
              mx.wall_seconds);
}

bool write_trace_if_requested(const std::string& trace_path) {
  if (trace_path.empty()) return true;
  sd::obs::Tracer& tracer = sd::obs::Tracer::instance();
  if (tracer.write_chrome_trace(trace_path)) {
    std::printf("trace: %s (%zu spans, %llu dropped)\n", trace_path.c_str(),
                tracer.snapshot().size(),
                static_cast<unsigned long long>(tracer.dropped()));
    return true;
  }
  std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
  return false;
}

/// Serve real network traffic until --duration elapses or a signal lands.
int run_net_ingress(const sd::Cli& cli, const sd::SystemConfig& sys,
                    const sd::DecoderSpec& spec, sd::serve::ServerOptions so,
                    const std::string& ingress_kind,
                    const std::string& metrics_json,
                    const std::string& trace_path) {
  using namespace sd;
  net::ShardedServerOptions sho;
  sho.num_shards = static_cast<usize>(cli.get_int_or("shards", 1));
  sho.server = so;
  sho.admission.enabled = cli.get_or("admission", "on") != "off";
  net::ShardedServer shards(sys, spec, sho);

  net::IngressOptions io;
  if (ingress_kind == "tcp" || ingress_kind == "net") {
    io.enable_tcp = true;
    io.tcp_port = static_cast<std::uint16_t>(cli.get_int_or("port", 0));
  }
  if (ingress_kind == "uds" || ingress_kind == "net")
    io.uds_path = cli.get_or("uds", "/tmp/spheredec_uplink.sock");
  net::IngressServer ingress(shards, io);
  ingress.start();
  if (io.enable_tcp)
    std::printf("listening on tcp://127.0.0.1:%u\n", ingress.tcp_port());
  if (!io.uds_path.empty())
    std::printf("listening on uds://%s\n", io.uds_path.c_str());
  std::printf("%zu shard(s), admission %s — ctrl-C to drain and exit\n\n",
              shards.num_shards(), sho.admission.enabled ? "on" : "off");
  std::fflush(stdout);

  const double duration_s = cli.get_double_or("duration", 0.0);
  const auto t0 = serve::Clock::now();
  while (!g_stop.load(std::memory_order_relaxed)) {
    if (duration_s > 0.0 &&
        std::chrono::duration<double>(serve::Clock::now() - t0).count() >=
            duration_s)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("draining...\n");
  ingress.stop();
  shards.drain();

  const serve::ServerMetrics mx = shards.global_metrics();
  const net::NetStats ns = ingress.stats();
  const net::AdmissionStats as = shards.global_admission_stats();
  print_metrics_tables(mx);
  std::printf("net: %llu conns (%llu dropped, %llu protocol errors), "
              "%llu frames rx, %llu responses tx (%llu shed/rejected), "
              "channel cache %llu hits / %llu misses\n",
              static_cast<unsigned long long>(ns.connections_accepted),
              static_cast<unsigned long long>(ns.connections_dropped),
              static_cast<unsigned long long>(ns.protocol_errors),
              static_cast<unsigned long long>(ns.frames_rx),
              static_cast<unsigned long long>(ns.responses_tx),
              static_cast<unsigned long long>(ns.shed_tx),
              static_cast<unsigned long long>(ns.channel_cache_hits),
              static_cast<unsigned long long>(ns.channel_cache_misses));
  std::printf("admission: %llu considered, %llu admitted (%llu degraded), "
              "%llu shed\n",
              static_cast<unsigned long long>(as.considered),
              static_cast<unsigned long long>(as.admitted),
              static_cast<unsigned long long>(as.degraded_kbest +
                                              as.degraded_linear),
              static_cast<unsigned long long>(as.shed));
  for (usize s = 0; s < shards.num_shards(); ++s) {
    const serve::ServerMetrics sm = shards.shard_metrics(s);
    std::printf("shard %zu: %llu submitted, %llu completed, %llu misses, "
                "%.0f frames/s\n", s,
                static_cast<unsigned long long>(sm.submitted),
                static_cast<unsigned long long>(sm.completed),
                static_cast<unsigned long long>(sm.deadline_misses),
                sm.throughput_fps);
  }

  if (!metrics_json.empty()) {
    obs::CounterRegistry reg;
    mx.export_counters(reg);
    ns.export_counters(reg);
    as.export_counters(reg);
    for (usize s = 0; s < shards.num_shards(); ++s) {
      const std::string prefix = "shard." + std::to_string(s);
      shards.shard_metrics(s).export_counters(reg, prefix);
      shards.shard(s).dispatcher().stats().export_counters(
          reg, prefix + ".dispatch");
    }
    if (reg.write_json(metrics_json)) {
      std::printf("metrics: %s\n", metrics_json.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", metrics_json.c_str());
      return 1;
    }
  }
  return write_trace_if_requested(trace_path) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sd;
  using namespace sd::serve;
  const Cli cli(argc, argv);
  install_signal_handlers();
  const auto m = static_cast<index_t>(cli.get_int_or("m", 10));
  const Modulation mod = parse_modulation(cli.get_or("mod", "4qam"));
  const SystemConfig sys{m, m, mod};
  const std::string backend = cli.get_or("backend", "sphere");
  DecoderSpec spec = parse_decoder_spec(backend);
  // --precision=int16 switches the lane detectors to the fixed-point BFS
  // datapath (requires --backend=bfs); fp32 is the default everywhere.
  const std::string precision = cli.get_or("precision", "");
  if (!precision.empty()) {
    try {
      apply_precision(spec, precision);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--precision=%s: %s\n", precision.c_str(), e.what());
      return 1;
    }
  }

  ServerOptions so = parse_server_options(
      cli.get_or("server", ""),
      [] { ServerOptions d; d.num_workers = 4; d.batch_size = 4; return d; }());
  so.backends = cli.get_or("backends", so.backends);
  const std::string placement = cli.get_or("placement", "");
  if (!placement.empty())
    so.placement = dispatch::parse_placement_policy(placement);

  const std::string metrics_json = cli.get_or("metrics-json", "");
  const std::string trace_path = cli.get_or("trace", "");
  if (!trace_path.empty()) obs::Tracer::instance().enable();

  const std::string ingress_kind = cli.get_or("ingress", "inproc");
  if (ingress_kind != "inproc") {
    if (ingress_kind != "tcp" && ingress_kind != "uds" &&
        ingress_kind != "net") {
      std::fprintf(stderr, "unknown --ingress=%s (inproc, tcp, uds, net)\n",
                   ingress_kind.c_str());
      return 1;
    }
    return run_net_ingress(cli, sys, spec, so, ingress_kind, metrics_json,
                           trace_path);
  }

  const std::string cost_in = cli.get_or("cost-model-in", "");
  const std::string cost_out = cli.get_or("cost-model-out", "");
  std::string cost_in_json;
  if (!cost_in.empty()) {
    std::ifstream in(cost_in);
    if (!in) {
      std::fprintf(stderr, "failed to read %s\n", cost_in.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    cost_in_json = ss.str();
  }

  LoadOptions lo;
  const std::string mode = cli.get_or("mode", "closed");
  if (mode == "closed") {
    lo.mode = ArrivalMode::kClosedLoop;
  } else if (mode == "open") {
    lo.mode = ArrivalMode::kOpenLoop;
  } else {
    std::fprintf(stderr, "unknown --mode=%s (closed, open)\n", mode.c_str());
    return 1;
  }
  lo.num_frames = static_cast<usize>(cli.get_int_or("frames", 200));
  lo.window = static_cast<usize>(cli.get_int_or("window", 2 * so.num_workers));
  lo.rate_fps = cli.get_double_or("rate", 500.0);
  lo.snr_db = cli.get_double_or("snr", 8.0);
  lo.seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 1));
  // --coherence=L: block fading — H is drawn once per L consecutive frames,
  // which share one ChannelHandle. Feeds the backend prep cache and the
  // fused multi-frame decode path. Default 1 = i.i.d. channels.
  lo.coherence = static_cast<usize>(cli.get_int_or("coherence", 1));
  // --cells=C: C independent cells multiplexed round-robin, so consecutive
  // arrivals carry different channels — the interleaved shape the cross-lane
  // wide-batch former (--server=wide-width=N / no-cross-lane-fuse) fuses.
  lo.cells = static_cast<usize>(cli.get_int_or("cells", 1));
  // A SIGINT/SIGTERM stops submissions; in-flight frames still drain and
  // the metrics/trace outputs below are still written.
  lo.stop = &g_stop;

  std::printf("uplink server: %dx%d %s @ %.0f dB | backend %s | %s, "
              "batch %zu, queue %zu (%s), deadline %s, placement %s\n",
              m, m, std::string(modulation_name(mod)).c_str(), lo.snr_db,
              backend.c_str(),
              so.backends.empty()
                  ? (std::to_string(so.num_workers) + " workers").c_str()
                  : ("pool " + so.backends).c_str(),
              so.batch_size, so.queue_capacity,
              std::string(backpressure_policy_name(so.policy)).c_str(),
              so.default_deadline_s > 0
                  ? (fmt(so.default_deadline_s * 1e3, 2) + " ms").c_str()
                  : "none",
              std::string(dispatch::placement_policy_name(so.placement))
                  .c_str());
  std::printf("load: %s, %zu frames%s\n\n",
              std::string(arrival_mode_name(lo.mode)).c_str(), lo.num_frames,
              lo.mode == ArrivalMode::kOpenLoop
                  ? (" @ " + fmt(lo.rate_fps, 0) + " frames/s").c_str()
                  : (", window " + std::to_string(lo.window)).c_str());

  LoadGenerator gen(sys, spec, so, lo);
  const LoadReport rep = gen.run({}, [&](DetectionServer& srv) {
    if (!cost_in_json.empty())
      srv.dispatcher().cost_model().import_json(cost_in_json);
  });
  const ServerMetrics& mx = rep.metrics;
  if (g_stop.load(std::memory_order_relaxed))
    std::printf("interrupted: drained after %zu submitted frames\n\n",
                rep.submitted);

  print_metrics_tables(mx);
  for (usize w = 0; w < mx.workers.size(); ++w) {
    std::printf("worker %zu: %llu frames in %llu batches, utilization %s\n", w,
                static_cast<unsigned long long>(mx.workers[w].frames),
                static_cast<unsigned long long>(mx.workers[w].batches),
                fmt_pct(mx.workers[w].utilization).c_str());
  }
  if (!so.backends.empty()) {
    for (const dispatch::BackendMetrics& bm : rep.backends) {
      std::printf("backend %-12s %u lanes: %llu done, %llu expired, "
                  "%llu misses, %llu steals, %llu degraded, e2e p99 %s ms\n",
                  bm.label.c_str(), bm.lanes,
                  static_cast<unsigned long long>(bm.metrics.completed),
                  static_cast<unsigned long long>(bm.metrics.expired_fallback +
                                                 bm.metrics.expired_dropped),
                  static_cast<unsigned long long>(bm.metrics.deadline_misses),
                  static_cast<unsigned long long>(bm.steals),
                  static_cast<unsigned long long>(bm.degraded_kbest +
                                                 bm.degraded_linear),
                  fmt(bm.metrics.e2e.p99_s * 1e3, 3).c_str());
    }
    const dispatch::DispatchStats& ds = rep.dispatch;
    std::printf("dispatch: %llu steals, %llu degraded, cost model %llu "
                "observations in %llu buckets, prediction error %s "
                "(%llu samples)\n",
                static_cast<unsigned long long>(ds.steals),
                static_cast<unsigned long long>(ds.degraded_kbest +
                                                ds.degraded_linear),
                static_cast<unsigned long long>(ds.cost_observations),
                static_cast<unsigned long long>(ds.cost_buckets),
                ds.prediction_samples > 0 ? fmt_pct(ds.mean_rel_error).c_str()
                                          : "--",
                static_cast<unsigned long long>(ds.prediction_samples));
    if (ds.prep_hits + ds.prep_misses > 0) {
      std::printf("prep cache: %llu hits / %llu misses (%s hit rate); "
                  "fused %llu runs covering %llu frames\n",
                  static_cast<unsigned long long>(ds.prep_hits),
                  static_cast<unsigned long long>(ds.prep_misses),
                  fmt_pct(static_cast<double>(ds.prep_hits) /
                          static_cast<double>(ds.prep_hits + ds.prep_misses))
                      .c_str(),
                  static_cast<unsigned long long>(ds.fused_runs),
                  static_cast<unsigned long long>(ds.fused_frames));
    }
  }
  if (rep.symbols_checked > 0) {
    std::printf("SER vs ground truth: %.4g (%llu/%llu symbols)\n",
                static_cast<double>(rep.symbol_errors) /
                    static_cast<double>(rep.symbols_checked),
                static_cast<unsigned long long>(rep.symbol_errors),
                static_cast<unsigned long long>(rep.symbols_checked));
  }

  if (!cost_out.empty()) {
    std::ofstream out(cost_out);
    out << rep.cost_model_json;
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", cost_out.c_str());
      return 1;
    }
    std::printf("cost model: %s\n", cost_out.c_str());
  }

  if (!metrics_json.empty()) {
    obs::CounterRegistry reg;
    mx.export_counters(reg);
    rep.dispatch.export_counters(reg);
    if (reg.write_json(metrics_json)) {
      std::printf("metrics: %s\n", metrics_json.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", metrics_json.c_str());
      return 1;
    }
  }
  return write_trace_if_requested(trace_path) ? 0 : 1;
}
