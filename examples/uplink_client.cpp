// Uplink load-generator client: streams seeded frames into a running
// `uplink_server --ingress=...` over the wire protocol and reports the
// client-side view — per-status counts, end-to-end latency, SER vs the
// scenario's ground truth.
//
//   ./uplink_client --connect=uds:/tmp/spheredec_uplink.sock
//   ./uplink_client --connect=tcp:45555 --m=10 --mod=4qam --snr=8
//                   [--frames=1000] [--seed=1] [--coherence=1] [--cells=1]
//                   [--mode=closed|open] [--window=8] [--rate=1000]
//                   [--qos=mix|hard|soft|best] [--deadline-ms=0]
//
// The frame stream is the same seeded Scenario the in-process load generator
// uses, so a run against `--ingress` and a run with the same knobs in-process
// decode identical (h, y, sigma2) streams — the bit-identity property the e2e
// test pins. Channel elision follows the coherence block: H ships once per
// block and later frames reference it by fingerprint (send_frame_auto), so
// `--cells=N` assigns whole blocks round-robin to cells to keep elision
// effective. QoS mix `mix` tags frames 30% hard / 40% soft / 30% best-effort
// by index, matching bench_ingress.
//
// One sender thread paces submissions (closed-loop window or open-loop rate);
// one reader thread matches responses by frame id. The socket stays fully
// open until the last response arrives — the server drops a connection on
// EOF, taking undelivered responses with it.
#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "decode/channel_prep.hpp"
#include "mimo/scenario.hpp"
#include "net/client.hpp"

namespace {

using Clock = std::chrono::steady_clock;

sd::net::QosClass qos_for(sd::usize i, const std::string& mix) {
  using sd::net::QosClass;
  if (mix == "hard") return QosClass::kHard;
  if (mix == "soft") return QosClass::kSoft;
  if (mix == "best") return QosClass::kBestEffort;
  const sd::usize r = i % 10;  // 30/40/30 mix, same as bench_ingress
  if (r < 3) return QosClass::kHard;
  if (r < 7) return QosClass::kSoft;
  return QosClass::kBestEffort;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<sd::usize>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sd;
  const Cli cli(argc, argv);

  const std::string connect = cli.get_or("connect", "");
  if (connect.rfind("tcp:", 0) != 0 && connect.rfind("uds:", 0) != 0) {
    std::fprintf(stderr,
                 "usage: uplink_client --connect=tcp:PORT|uds:PATH ...\n");
    return 1;
  }

  const auto m = static_cast<index_t>(cli.get_int_or("m", 10));
  const Modulation mod = parse_modulation(cli.get_or("mod", "4qam"));
  const usize frames = static_cast<usize>(cli.get_int_or("frames", 1000));
  const usize coherence = static_cast<usize>(cli.get_int_or("coherence", 1));
  const usize cells = static_cast<usize>(cli.get_int_or("cells", 1));
  const usize window = static_cast<usize>(cli.get_int_or("window", 8));
  const double rate_fps = cli.get_double_or("rate", 1000.0);
  const double deadline_s = cli.get_double_or("deadline-ms", 0.0) * 1e-3;
  const std::string mode = cli.get_or("mode", "closed");
  const std::string qos_mix = cli.get_or("qos", "mix");
  const bool open_loop = mode == "open";
  if (!open_loop && mode != "closed") {
    std::fprintf(stderr, "unknown --mode=%s (closed, open)\n", mode.c_str());
    return 1;
  }

  // Pre-generate the full seeded stream (identical to LoadOptions with the
  // same knobs) plus one fingerprint per coherence block.
  ScenarioConfig sc;
  sc.num_tx = m;
  sc.num_rx = m;
  sc.modulation = mod;
  sc.snr_db = cli.get_double_or("snr", 8.0);
  sc.seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 1));
  sc.coherence_block = coherence;
  Scenario scenario(sc);
  std::vector<Trial> trials;
  trials.reserve(frames);
  for (usize i = 0; i < frames; ++i) trials.push_back(scenario.next());
  std::vector<std::uint64_t> fps(frames);
  for (usize i = 0; i < frames; ++i) {
    fps[i] = (i % coherence == 0) ? channel_fingerprint(trials[i].h)
                                  : fps[i - 1];
  }

  net::NetClient client =
      connect.rfind("tcp:", 0) == 0
          ? net::NetClient::connect_tcp(
                static_cast<std::uint16_t>(std::stoi(connect.substr(4))))
          : net::NetClient::connect_uds(connect.substr(4));
  std::printf("uplink client: %s | %dx%d %s @ %.0f dB | %zu frames, "
              "coherence %zu, %zu cell(s), qos %s | %s\n\n",
              connect.c_str(), m, m,
              std::string(modulation_name(mod)).c_str(), sc.snr_db, frames,
              coherence, cells, qos_mix.c_str(),
              open_loop ? ("open @ " + fmt(rate_fps, 0) + " f/s").c_str()
                        : ("closed, window " + std::to_string(window)).c_str());

  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    usize outstanding = 0;
    usize responses = 0;
    std::array<std::uint64_t, 6> by_status = {};  // WireFrameStatus
    std::uint64_t symbol_errors = 0;
    std::uint64_t symbols_checked = 0;
    std::vector<double> latency_s;
    bool eof = false;
  } sh;
  std::vector<Clock::time_point> sent_at(frames);

  std::thread reader([&] {
    net::WireResponse resp;
    try {
      while (sh.responses < frames && client.recv(resp)) {
        const Clock::time_point now = Clock::now();
        std::lock_guard<std::mutex> lock(sh.mu);
        ++sh.responses;
        if (sh.outstanding > 0) --sh.outstanding;
        const auto s = static_cast<usize>(resp.status);
        if (s < sh.by_status.size()) ++sh.by_status[s];
        if (resp.frame_id < frames) {
          sh.latency_s.push_back(std::chrono::duration<double>(
                                     now - sent_at[resp.frame_id]).count());
          if (resp.status == net::WireFrameStatus::kCompleted ||
              resp.status == net::WireFrameStatus::kExpiredFallback) {
            const std::vector<index_t>& truth =
                trials[resp.frame_id].tx.indices;
            for (usize k = 0; k < truth.size(); ++k) {
              ++sh.symbols_checked;
              if (k >= resp.indices.size() || resp.indices[k] != truth[k])
                ++sh.symbol_errors;
            }
          }
        }
        sh.cv.notify_all();
      }
    } catch (const net::net_error& e) {
      std::fprintf(stderr, "reader: %s\n", e.what());
    }
    std::lock_guard<std::mutex> lock(sh.mu);
    sh.eof = sh.responses < frames;
    sh.cv.notify_all();
  });

  const Clock::time_point t0 = Clock::now();
  const auto interval = std::chrono::duration<double>(
      rate_fps > 0.0 ? 1.0 / rate_fps : 0.0);
  usize sent = 0;
  bool send_failed = false;
  for (usize i = 0; i < frames; ++i) {
    if (open_loop) {
      std::this_thread::sleep_until(
          t0 + std::chrono::duration_cast<Clock::duration>(interval) *
                   static_cast<long>(i));
    } else {
      std::unique_lock<std::mutex> lock(sh.mu);
      sh.cv.wait(lock, [&] { return sh.outstanding < window || sh.eof; });
      if (sh.eof) break;
    }
    net::WireFrame wf;
    wf.cell_id = static_cast<std::uint32_t>((i / coherence) % cells);
    wf.frame_id = i;
    wf.qos = qos_for(i, qos_mix);
    wf.deadline_s = deadline_s;
    wf.sigma2 = trials[i].sigma2;
    wf.y = trials[i].y;
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      ++sh.outstanding;
    }
    sent_at[i] = Clock::now();
    if (!client.send_frame_auto(wf, trials[i].h, fps[i])) {
      std::lock_guard<std::mutex> lock(sh.mu);
      --sh.outstanding;
      send_failed = true;
      break;
    }
    ++sent;
  }

  {
    // Wait for every response to the frames actually sent; EOF ends it early.
    std::unique_lock<std::mutex> lock(sh.mu);
    sh.cv.wait(lock, [&] { return sh.responses >= sent || sh.eof; });
  }
  client.finish_sending();  // server sees EOF only after the last response
  reader.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  Table counts({"sent", "responses", "completed", "expired", "evicted",
                "shed", "rejected"});
  counts.add_row(
      {std::to_string(sent), std::to_string(sh.responses),
       std::to_string(sh.by_status[0]),
       std::to_string(sh.by_status[1] + sh.by_status[2]),
       std::to_string(sh.by_status[3]), std::to_string(sh.by_status[4]),
       std::to_string(sh.by_status[5])});
  std::fputs(counts.render().c_str(), stdout);

  std::sort(sh.latency_s.begin(), sh.latency_s.end());
  if (!sh.latency_s.empty()) {
    double sum = 0.0;
    for (double v : sh.latency_s) sum += v;
    Table lat({"latency", "count", "mean (ms)", "p50 (ms)", "p95 (ms)",
               "p99 (ms)", "max (ms)"},
              {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
               Align::kRight, Align::kRight, Align::kRight});
    lat.add_row({"client e2e", std::to_string(sh.latency_s.size()),
                 fmt(sum / static_cast<double>(sh.latency_s.size()) * 1e3, 3),
                 fmt(percentile(sh.latency_s, 0.50) * 1e3, 3),
                 fmt(percentile(sh.latency_s, 0.95) * 1e3, 3),
                 fmt(percentile(sh.latency_s, 0.99) * 1e3, 3),
                 fmt(sh.latency_s.back() * 1e3, 3)});
    std::fputs(lat.render().c_str(), stdout);
  }

  std::printf("\nthroughput: %.0f frames/s over %.3f s | %zu bytes tx, "
              "%zu bytes rx (%.1f bytes/frame tx)\n",
              wall_s > 0.0 ? static_cast<double>(sh.responses) / wall_s : 0.0,
              wall_s, client.bytes_sent(), client.bytes_received(),
              sent > 0 ? static_cast<double>(client.bytes_sent()) /
                             static_cast<double>(sent)
                       : 0.0);
  if (sh.symbols_checked > 0) {
    std::printf("SER vs ground truth: %.4g (%llu/%llu symbols)\n",
                static_cast<double>(sh.symbol_errors) /
                    static_cast<double>(sh.symbols_checked),
                static_cast<unsigned long long>(sh.symbol_errors),
                static_cast<unsigned long long>(sh.symbols_checked));
  }
  if (send_failed) std::fprintf(stderr, "send failed: server closed\n");
  const bool lost = sh.responses < sent;
  if (lost) {
    std::fprintf(stderr, "%zu frames unanswered\n", sent - sh.responses);
  }
  return (send_failed || lost) ? 1 : 0;
}
