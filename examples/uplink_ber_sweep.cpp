// Uplink link-level simulation: BER/SER/FER vs SNR for a configurable
// detector set — the workload a wireless systems engineer runs to pick an
// operating point for a large-MIMO uplink.
//
//   ./uplink_ber_sweep [--m=10] [--mod=4qam] [--trials=200]
//                      [--snr-min=4] [--snr-max=20] [--snr-step=4]
//                      [--detectors=sphere,mmse,zf,kbest:k=16]
//                      [--csv=out.csv]   (detector specs: see decoder_spec_help)
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/spec_parse.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sd;
  const Cli cli(argc, argv);
  const auto m = static_cast<index_t>(cli.get_int_or("m", 10));
  const Modulation mod = parse_modulation(cli.get_or("mod", "4qam"));
  const auto trials = static_cast<usize>(cli.get_int_or("trials", 200));
  const double snr_min = cli.get_double_or("snr-min", 4.0);
  const double snr_max = cli.get_double_or("snr-max", 20.0);
  const double snr_step = cli.get_double_or("snr-step", 4.0);
  const auto det_names =
      split_csv(cli.get_or("detectors", "sphere,mmse,zf,kbest"));

  std::vector<double> snrs;
  for (double s = snr_min; s <= snr_max + 1e-9; s += snr_step) snrs.push_back(s);

  const SystemConfig sys{m, m, mod};
  ExperimentRunner runner(sys, trials, 2024);
  std::printf("uplink BER sweep: %dx%d %s, %zu trials/point\n", m, m,
              std::string(modulation_name(mod)).c_str(), trials);

  std::vector<std::string> headers{"SNR (dB)"};
  for (const auto& name : det_names) headers.push_back(name + " BER");
  headers.push_back("sphere SER");
  headers.push_back("sphere FER");
  Table t(std::move(headers));

  std::vector<SweepResult> results;
  for (const auto& name : det_names) {
    auto det = make_detector(sys, parse_decoder_spec(name));
    results.push_back(runner.sweep(*det, snrs));
  }
  for (usize si = 0; si < snrs.size(); ++si) {
    std::vector<std::string> row{fmt(snrs[si], 0)};
    for (const SweepResult& r : results) {
      row.push_back(fmt_sci(r.points[si].ber));
    }
    row.push_back(fmt_sci(results.front().points[si].ser));
    row.push_back(fmt_sci(results.front().points[si].fer));
    t.add_row(std::move(row));
  }
  std::fputs(t.render().c_str(), stdout);
  if (const auto csv_path = cli.get("csv"); csv_path && !csv_path->empty()) {
    std::ofstream csv(*csv_path);
    write_csv(csv, results);
    std::printf("wrote %s\n", csv_path->c_str());
  }
  std::printf("%s\n", std::string(decoder_spec_help()).c_str());
  return 0;
}
