// Link adaptation: for each channel SNR, pick the highest-rate modulation
// whose decoded BER stays under a target AND whose decode latency fits the
// real-time budget on the chosen platform. This is the application-level
// payoff of a faster detector: the paper's FPGA design sustains denser
// constellations (higher throughput) deeper into the low-SNR regime.
//
//   ./link_adaptation [--m=8] [--trials=100] [--ber-target=1e-2]
//                     [--budget-ms=10] [--platform=fpga|cpu]
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace sd;
  const Cli cli(argc, argv);
  const auto m = static_cast<index_t>(cli.get_int_or("m", 8));
  const auto trials = static_cast<usize>(cli.get_int_or("trials", 100));
  const double ber_target = cli.get_double_or("ber-target", 1e-2);
  const double budget_s = cli.get_double_or("budget-ms", 10.0) * 1e-3;
  const std::string platform = cli.get_or("platform", "fpga");

  const std::vector<Modulation> ladder{Modulation::kBpsk, Modulation::kQam4,
                                       Modulation::kQam16};

  std::printf("link adaptation: %dx%d, BER target %.0e, budget %.1f ms, "
              "platform %s, %zu trials/point\n",
              m, m, ber_target, budget_s * 1e3, platform.c_str(), trials);

  Table t({"SNR (dB)", "chosen modulation", "bits/vector", "BER", "decode ms",
           "limited by"});
  for (double snr : {2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0}) {
    Modulation chosen = Modulation::kBpsk;
    bool found = false;
    double chosen_ber = 1.0, chosen_time = 0.0;
    std::string limiter = "BER";
    // Walk the ladder top-down; the first scheme meeting both constraints
    // wins (highest spectral efficiency).
    for (auto it = ladder.rbegin(); it != ladder.rend(); ++it) {
      const SystemConfig sys{m, m, *it};
      ExperimentRunner runner(sys, trials, 4242);
      DecoderSpec spec;
      spec.sd.max_nodes = 500'000;
      if (platform == "fpga") spec.device = TargetDevice::kFpgaOptimized;
      auto det = make_detector(sys, spec);
      const SweepPoint p = runner.run_point(*det, snr);
      if (p.ber <= ber_target && p.mean_seconds <= budget_s) {
        chosen = *it;
        chosen_ber = p.ber;
        chosen_time = p.mean_seconds;
        found = true;
        break;
      }
      limiter = p.ber > ber_target ? "BER" : "latency";
    }
    if (found) {
      const int bits =
          m * Constellation::get(chosen).bits_per_symbol();
      t.add_row({fmt(snr, 0), std::string(modulation_name(chosen)),
                 std::to_string(bits), fmt_sci(chosen_ber),
                 fmt(chosen_time * 1e3, 3), "-"});
    } else {
      t.add_row({fmt(snr, 0), "(outage)", "0", "-", "-", limiter});
    }
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("try --platform=cpu to see the throughput lost when the "
              "decoder is slower.\n");
  return 0;
}
